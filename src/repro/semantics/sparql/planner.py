"""Cost-based query planning with versioned plan / result caching.

The naive evaluator joins a basic graph pattern's triples in whatever order
the query author wrote them (breaking ties only on the number of unbound
positions), so a badly-ordered query degenerates to a near-full scan even
though the graph answers every partially-ground pattern by index lookup.
This module adds the missing cost model:

* **Cardinality estimation** — :func:`estimate_pattern` prices a triple
  pattern from the graph's maintained statistics
  (:meth:`~repro.semantics.rdf.graph.Graph.pattern_cardinality`, per-
  predicate triple / distinct-subject / distinct-object counts).  A
  variable that an earlier join step will have bound is priced as the
  average fan-out of its position, e.g. ``count(p) / distinct_subjects(p)``
  for a bound subject.

* **Join ordering** — :func:`order_patterns` greedily picks the cheapest
  remaining pattern under the already-bound variable set (most selective
  first), preferring patterns that share already-bound variables so the
  join never degenerates to a cartesian product, and propagates the chosen
  pattern's variables into the bound set for the next round.

* **Filter pushdown** — :func:`build_plan` attaches each FILTER predicate
  to the earliest join step at which its variable is bound, so failing
  bindings are discarded before they fan out.  Filters over variables only
  bound by OPTIONAL blocks keep their SPARQL semantics: they stay above the
  left-join, exactly where the naive evaluator applies them.

* **Caching** — :class:`QueryPlanner` memoises plans and (optionally,
  bounded-LRU) full result sets keyed by query text; both are invalidated
  by the graph's monotonic :attr:`~repro.semantics.rdf.graph.Graph.version`
  counter, so repeated dashboard / DEWS queries over an unchanged graph
  skip parse, plan *and* evaluation, while any mutation transparently
  forces re-evaluation (and re-planning against fresh statistics).

Every evaluation path in the middleware — ``evaluator.query`` /
``select``, :meth:`Reasoner.query`, the ontology segment layer, the
application abstraction layer, the middleware facade and the DEWS — routes
through the per-graph shared planner returned by :func:`planner_for`.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.term import Term, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.algebra import (
    Filter,
    FilterFunction,
    LeftJoin,
    Operator,
    Projection,
    encode_bgp_patterns,
    encode_initial_bindings,
    match_encoded,
)
from repro.semantics.sparql.bindings import (
    EMPTY_BINDINGS,
    Bindings,
    bindings_from_mapping,
)
from repro.semantics.sparql.evaluator import (
    QueryResult,
    _build_filter,
    _resolve_term,
)
from repro.semantics.sparql.parser import ParsedPattern, ParsedQuery, parse_query


# --------------------------------------------------------------------- #
# cardinality estimation
# --------------------------------------------------------------------- #

def estimate_pattern(graph: Graph, pattern: Triple, bound: Set[Variable]) -> float:
    """Estimated number of bindings produced by matching ``pattern``.

    Positions holding ground terms use the exact index counts; positions
    holding a variable in ``bound`` are priced as average fan-out (the
    pattern's wildcard count divided by the distinct values the bound
    position can take); free variables cost nothing extra.
    """
    s, p, o = pattern.subject, pattern.predicate, pattern.object
    s_bound = isinstance(s, Variable) and s in bound
    p_bound = isinstance(p, Variable) and p in bound
    o_bound = isinstance(o, Variable) and o in bound
    base = graph.pattern_cardinality((s, p, o))
    if base == 0:
        return 0.0
    estimate = float(base)
    if not isinstance(p, Variable):
        if s_bound:
            estimate /= max(1, graph.distinct_subjects_count(p))
        if o_bound:
            estimate /= max(1, graph.distinct_objects_count(p))
    else:
        if s_bound:
            estimate /= max(1, graph.distinct_subjects_count())
        if o_bound:
            estimate /= max(1, graph.distinct_objects_count())
        if p_bound:
            estimate /= max(1, graph.distinct_predicates_count())
    return estimate


def order_patterns(
    graph: Graph,
    patterns: Sequence[Triple],
    bound: Sequence[Variable] = (),
) -> List[Triple]:
    """Greedy selectivity-first join order with bound-variable propagation.

    At every step the cheapest remaining pattern under the current bound
    set is chosen; patterns sharing no bound variable with the prefix are
    deferred while any connected (or fully ground) pattern remains, since
    a disconnected pattern multiplies the intermediate result (cartesian
    product) no matter how cheap it looks on its own.
    """
    remaining = list(patterns)
    bound_vars: Set[Variable] = set(bound)
    ordered: List[Triple] = []
    while remaining:
        def cost(pattern: Triple) -> Tuple[int, float, int]:
            pattern_vars = set(pattern.variables())
            shared = len(pattern_vars & bound_vars)
            free = len(pattern_vars - bound_vars)
            disconnected = 1 if (ordered and free and not shared) else 0
            return (disconnected, estimate_pattern(graph, pattern, bound_vars), -shared)

        best = min(remaining, key=cost)
        remaining.remove(best)
        ordered.append(best)
        bound_vars.update(best.variables())
    return ordered


# --------------------------------------------------------------------- #
# the planned BGP operator
# --------------------------------------------------------------------- #

#: A FILTER pushed into a join step: the variable it constrains (already
#: bound at that step, by construction) plus the predicate itself.
StepFilter = Tuple[Variable, FilterFunction]


class PlannedBGP(Operator):
    """A basic graph pattern evaluated in a fixed pre-planned join order.

    Unlike :class:`~repro.semantics.sparql.algebra.BGP` there is no
    per-step reordering: the planner has already fixed the order from the
    graph's cardinality statistics.  Each join step can carry pushed-down
    FILTER predicates that are applied the moment their variable is bound,
    before the partial solution fans out into deeper steps.

    The join itself runs in id space: ground pattern terms are resolved to
    dictionary ids once per evaluation, variables bind to ids, and every
    probe / extension / consistency check is an integer operation.  A
    pushed-down filter decodes exactly the one variable it constrains (the
    parser's FILTER syntax is single-variable); full solutions are decoded
    to terms only as they leave the operator.

    ``source_patterns`` preserves the written pattern order purely for
    :meth:`variables`, so ``SELECT *`` projections list variables in the
    order the author introduced them regardless of the join order chosen.
    """

    def __init__(
        self,
        patterns: Sequence[Triple],
        step_filters: Optional[Sequence[Sequence[StepFilter]]] = None,
        source_patterns: Optional[Sequence[Triple]] = None,
    ):
        self.patterns = list(patterns)
        if step_filters is None:
            step_filters = [[] for _ in self.patterns]
        if len(step_filters) != len(self.patterns):
            raise ValueError("step_filters must parallel patterns")
        self.step_filters = [list(fns) for fns in step_filters]
        self.source_patterns = list(source_patterns) if source_patterns else self.patterns

    def variables(self) -> List[Variable]:
        seen: List[Variable] = []
        for pattern in self.source_patterns:
            for var in pattern.variables():
                if var not in seen:
                    seen.append(var)
        return seen

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        yield from self.solutions_from(graph, EMPTY_BINDINGS)

    def solutions_from(self, graph: Graph, bindings: Bindings) -> Iterator[Bindings]:
        if not self.patterns:
            yield bindings
            return
        encoded = encode_bgp_patterns(graph, self.patterns)
        if encoded is None:
            # a ground query term the graph has never interned: nothing
            # stored can match the conjunction
            return
        pattern_vars = {v for p in self.patterns for v in p.variables()}
        split = encode_initial_bindings(graph, bindings, pattern_vars)
        if split is None:
            return
        bound, passthrough = split
        terms = graph.dictionary.terms
        # the shared id-join loop, in this plan's fixed order with the
        # pushed-down per-step filters applied as variables bind
        for solution in match_encoded(graph, encoded, bound, self.step_filters):
            mapping: Dict[Variable, Term] = {
                var: terms[term_id] for var, term_id in solution.items()
            }
            if passthrough:
                mapping.update(passthrough)
            yield bindings_from_mapping(mapping)


def plan_patterns(
    graph: Graph, patterns: Sequence[Triple], bound: Sequence[Variable] = ()
) -> PlannedBGP:
    """Plan an explicit pattern list into a :class:`PlannedBGP`."""
    return PlannedBGP(
        order_patterns(graph, patterns, bound), source_patterns=patterns
    )


# --------------------------------------------------------------------- #
# whole-query planning
# --------------------------------------------------------------------- #

@dataclass
class QueryPlan:
    """A compiled, reusable query: algebra tree plus cache bookkeeping."""

    form: str                      # "SELECT" or "ASK"
    root: Operator                 # full tree including the projection
    variables: List[Variable]      # projected variables, written order
    stamp: Tuple[int, int]         # (graph version, namespace generation)
                                   # the plan was resolved and costed at

    def execute(self, graph: Graph) -> List[Bindings]:
        if self.form == "ASK":
            # existence only: stop at the first solution instead of
            # materialising every binding (ASK plans carry no projection,
            # so the operator tree underneath is fully lazy)
            first = next(self.root.solutions(graph), None)
            return [] if first is None else [first]
        return list(self.root.solutions(graph))


def _stamp(graph: Graph) -> Tuple[int, int]:
    """The cache-validity stamp of a graph's current state.

    The namespace generation participates because rebinding a prefix
    changes how the CURIEs baked into a cached plan (or the query text of
    a cached result) resolve, without any triple mutation.
    """
    return (graph.version, graph.namespaces.generation)


def _resolve_patterns(parsed: Sequence[ParsedPattern], graph: Graph) -> List[Triple]:
    return [
        Triple(
            _resolve_term(p.subject, graph),
            _resolve_term(p.predicate, graph),
            _resolve_term(p.object, graph),
        )
        for p in parsed
    ]


def build_plan(graph: Graph, parsed: ParsedQuery) -> QueryPlan:
    """Compile a parsed query into an optimised :class:`QueryPlan`."""
    core = _resolve_patterns(parsed.patterns, graph)
    ordered = order_patterns(graph, core)
    core_vars: Set[Variable] = set()
    for pattern in core:
        core_vars.update(pattern.variables())

    # FILTER pushdown: a filter whose variable the required patterns bind
    # is applied at the first join step after that variable is bound; a
    # filter over an OPTIONAL-only (or nowhere-bound) variable must keep
    # the naive placement above the left-joins to preserve semantics.
    filters = [_build_filter(flt, graph) for flt in parsed.filters]
    step_filters: List[List[StepFilter]] = [[] for _ in ordered]
    outer_filters: List[FilterFunction] = []
    cumulative: Set[Variable] = set()
    bound_after: List[Set[Variable]] = []
    for pattern in ordered:
        cumulative |= set(pattern.variables())
        bound_after.append(set(cumulative))
    for var, predicate in filters:
        if var in core_vars and ordered:
            for index, bound in enumerate(bound_after):
                if var in bound:
                    step_filters[index].append((var, predicate))
                    break
        else:
            outer_filters.append(predicate)

    root: Operator = PlannedBGP(ordered, step_filters, source_patterns=core)
    for optional in parsed.optional_patterns:
        optional_patterns = _resolve_patterns(optional, graph)
        # the left join evaluates its right side independently, so the
        # optional block is planned with an empty initial bound set
        root = LeftJoin(root, plan_patterns(graph, optional_patterns))
    for predicate in outer_filters:
        root = Filter(root, predicate)

    if parsed.form == "ASK":
        # no projection wrapper: Projection materialises its child's
        # solutions, which would defeat the ASK short-circuit in
        # :meth:`QueryPlan.execute`
        return QueryPlan(form="ASK", root=root, variables=[], stamp=_stamp(graph))

    projection_vars = [Variable(name) for name in parsed.variables] or None
    projection = Projection(
        root,
        variables=projection_vars,
        distinct=parsed.distinct,
        order_by=Variable(parsed.order_by) if parsed.order_by else None,
        descending=parsed.descending,
        limit=parsed.limit,
        offset=parsed.offset,
    )
    return QueryPlan(
        form="SELECT",
        root=projection,
        variables=projection.variables(),
        stamp=_stamp(graph),
    )


# --------------------------------------------------------------------- #
# the planner facade: plan cache + bounded result cache
# --------------------------------------------------------------------- #

@dataclass
class PlannerStatistics:
    """Cache / planning counters (feeds the query-planning benchmark)."""

    queries: int = 0
    parses: int = 0
    plans_built: int = 0
    plan_hits: int = 0
    plan_invalidations: int = 0
    result_hits: int = 0
    result_misses: int = 0
    result_invalidations: int = 0
    view_hits: int = 0


class QueryPlanner:
    """Plans textual queries over one (or more) graphs, caching aggressively.

    Parameters
    ----------
    plan_cache_size:
        Maximum number of compiled plans kept (LRU).  Plans are rebuilt
        when the graph's version or namespace bindings moved, since the
        statistics they were costed under — or the IRIs their CURIEs
        resolved to — may be stale.
    result_cache_size:
        Maximum number of full result sets kept (LRU), ``0`` to disable.
        A cached result is only served while the graph's version and
        namespace generation match those it was computed at — any triple
        mutation or prefix rebinding invalidates it.

    The planner itself holds no reference to a graph; every method takes
    the graph as an argument (and cache keys include the graph's identity),
    so a planner can be shared or per-graph (see :func:`planner_for`).
    """

    def __init__(self, plan_cache_size: int = 256, result_cache_size: int = 128):
        self.plan_cache_size = plan_cache_size
        self.result_cache_size = result_cache_size
        self.statistics = PlannerStatistics()
        # entries carry a weakref to their graph: a recycled id() after the
        # original graph is collected must read as a miss, never an alias
        self._plans: "OrderedDict[Tuple[int, str], Tuple[weakref.ref, QueryPlan]]" = OrderedDict()
        self._results: "OrderedDict[Tuple[int, str], Tuple[weakref.ref, Tuple[int, int], str, List[Bindings], List[Variable]]]" = OrderedDict()
        # parsing is graph-independent, so parsed queries are keyed by text
        # alone and survive every invalidation: a graph mutation re-plans
        # (re-costs the join order) but never re-parses
        self._parsed: "OrderedDict[str, ParsedQuery]" = OrderedDict()
        # standing views: delta-maintained materialized results that back
        # the result cache for registered queries instead of dying on every
        # Graph.version bump (see repro.semantics.sparql.views)
        self._views: "Dict[Tuple[int, str], Tuple[weakref.ref, object]]" = {}

    # -- planning ------------------------------------------------------ #

    def _parse(self, text: str) -> ParsedQuery:
        parsed = self._parsed.get(text)
        if parsed is None:
            parsed = parse_query(text)
            self.statistics.parses += 1
            self._parsed[text] = parsed
        self._parsed.move_to_end(text)
        while len(self._parsed) > self.plan_cache_size:
            self._parsed.popitem(last=False)
        return parsed

    def plan(self, graph: Graph, text: str) -> QueryPlan:
        """Return a (cached) compiled plan for ``text`` over ``graph``."""
        return self._plan_cached(graph, text, None)

    def plan_parsed(self, graph: Graph, cache_text: str, parsed: ParsedQuery) -> QueryPlan:
        """Like :meth:`plan` but for an already-parsed (possibly rewritten) query.

        ``cache_text`` keys the plan cache; the federator uses a marked
        variant of the original text so a modifier-stripped plan can never
        be served where the unmodified query is expected.
        """
        return self._plan_cached(graph, cache_text, parsed)

    def _plan_cached(
        self, graph: Graph, text: str, parsed: Optional[ParsedQuery]
    ) -> QueryPlan:
        key = (id(graph), text)
        entry = self._plans.get(key)
        if entry is not None:
            graph_ref, plan = entry
            if graph_ref() is graph:
                if plan.stamp == _stamp(graph):
                    self._plans.move_to_end(key)
                    self.statistics.plan_hits += 1
                    return plan
                self.statistics.plan_invalidations += 1
        plan = build_plan(graph, parsed if parsed is not None else self._parse(text))
        self.statistics.plans_built += 1
        self._plans[key] = (weakref.ref(graph), plan)
        self._plans.move_to_end(key)
        while len(self._plans) > self.plan_cache_size:
            self._plans.popitem(last=False)
        return plan

    # -- execution ----------------------------------------------------- #

    def query(self, graph: Graph, text: str) -> QueryResult:
        """Plan (or reuse) and execute ``text``, serving cached results.

        A result-cache hit returns a fresh :class:`QueryResult` over a
        copy of the cached solution list, so callers may consume results
        independently.
        """
        return self._query_cached(graph, text, None)

    def query_parsed(self, graph: Graph, cache_text: str, parsed: ParsedQuery) -> QueryResult:
        """Like :meth:`query` for an already-parsed (possibly rewritten) query.

        ``cache_text`` keys both the plan and the result cache, so the
        federator's modifier-stripped per-partition result sets enjoy the
        same version-keyed caching as ordinary queries without ever
        aliasing the unmodified query's entries.
        """
        return self._query_cached(graph, cache_text, parsed)

    def _query_cached(
        self, graph: Graph, text: str, parsed: Optional[ParsedQuery]
    ) -> QueryResult:
        self.statistics.queries += 1
        key = (id(graph), text)
        if self._views:
            entry = self._views.get(key)
            if entry is not None:
                graph_ref, view = entry
                if graph_ref() is graph:
                    # the maintained view *is* the result cache for this
                    # query: it folds pending deltas in instead of being
                    # invalidated by the version bump
                    self.statistics.view_hits += 1
                    return view.result()
                del self._views[key]
        if self.result_cache_size:
            cached = self._results.get(key)
            if cached is not None:
                graph_ref, stamp, form, solutions, variables = cached
                if graph_ref() is graph and stamp == _stamp(graph):
                    self._results.move_to_end(key)
                    self.statistics.result_hits += 1
                    return QueryResult(form, list(solutions), list(variables))
                self.statistics.result_invalidations += 1
                del self._results[key]
        plan = self._plan_cached(graph, text, parsed)
        self.statistics.result_misses += 1
        solutions = plan.execute(graph)
        if self.result_cache_size:
            self._results[key] = (
                weakref.ref(graph), _stamp(graph), plan.form, solutions, plan.variables,
            )
            self._results.move_to_end(key)
            while len(self._results) > self.result_cache_size:
                self._results.popitem(last=False)
        return QueryResult(plan.form, list(solutions), list(plan.variables))

    # -- standing views ------------------------------------------------ #

    def register_standing(
        self,
        graph: Graph,
        text: str,
        parsed: Optional[ParsedQuery] = None,
        cache_text: Optional[str] = None,
        name: Optional[str] = None,
        seed=None,
    ):
        """Register ``text`` as a delta-maintained standing view on ``graph``.

        From then on :meth:`query` (and :meth:`query_parsed` under the same
        ``cache_text`` key) serves the query from the materialized view,
        which folds graph deltas in incrementally instead of re-evaluating
        on every :attr:`Graph.version` bump.  Idempotent: re-registering
        returns the existing view.  ``seed`` (a recovered ``base -> rows``
        mapping) skips the initial materialization.
        """
        from repro.semantics.sparql.views import StandingView

        key = (id(graph), cache_text if cache_text is not None else text)
        entry = self._views.get(key)
        if entry is not None:
            graph_ref, view = entry
            if graph_ref() is graph:
                return view
        if parsed is None:
            parsed = self._parse(text)
        view = StandingView(graph, text, parsed=parsed, name=name, seed=seed)
        self._views[key] = (weakref.ref(graph), view)
        return view

    def standing_views(self) -> List[object]:
        """The live registered standing views."""
        views = []
        for key in list(self._views):
            graph_ref, view = self._views[key]
            if graph_ref() is None:
                del self._views[key]
            else:
                views.append(view)
        return views

    def stats(self) -> Dict[str, object]:
        """Cache and view counters as one observability snapshot."""
        s = self.statistics
        return {
            "queries": s.queries,
            "parses": s.parses,
            "plans_built": s.plans_built,
            "plan_hits": s.plan_hits,
            "plan_invalidations": s.plan_invalidations,
            "result_hits": s.result_hits,
            "result_misses": s.result_misses,
            "result_invalidations": s.result_invalidations,
            "view_hits": s.view_hits,
            "views": [view.stats() for view in self.standing_views()],
        }

    def clear_caches(self) -> None:
        """Drop every cached parse, plan and result (statistics are kept).

        Standing views are *not* dropped: they are not caches but
        maintained materializations, and stay registered until their graph
        is collected.
        """
        self._parsed.clear()
        self._plans.clear()
        self._results.clear()

    def __repr__(self) -> str:
        stats = self.statistics
        return (
            f"<QueryPlanner plans={len(self._plans)} results={len(self._results)} "
            f"hits={stats.plan_hits}/{stats.result_hits}>"
        )


# one shared planner per graph, dropped automatically with the graph
_PLANNERS: "weakref.WeakKeyDictionary[Graph, QueryPlanner]" = weakref.WeakKeyDictionary()


def planner_for(graph: Graph) -> QueryPlanner:
    """The process-wide shared :class:`QueryPlanner` for ``graph``.

    Held by weak reference to the graph: dropping the graph drops its
    planner (and caches) without explicit deregistration.
    """
    planner = _PLANNERS.get(graph)
    if planner is None:
        planner = QueryPlanner()
        _PLANNERS[graph] = planner
    return planner


def register_standing(graph: Graph, text: str, name: Optional[str] = None):
    """Register ``text`` as a standing view on ``graph``'s shared planner.

    Convenience wrapper over
    :meth:`QueryPlanner.register_standing`; every later
    ``evaluator.query(graph, text)`` (the default planner path) is served
    from the delta-maintained view.
    """
    return planner_for(graph).register_standing(graph, text, name=name)


# --------------------------------------------------------------------- #
# scatter-gather federation over graph partitions
# --------------------------------------------------------------------- #

#: Plan-cache key marker for the federator's rewritten (SELECT *,
#: modifier-free) per-partition plans, so they can never alias the
#: unmodified query's cached plan / results.
_FEDERATED_KEY_PREFIX = "\x00federated-full\x00"


class _Gathered(Operator):
    """Already-materialised solutions as an operator, so the federator can
    run the gathered merge through the ordinary :class:`Projection`."""

    def __init__(self, solutions: List[Bindings], variables: List[Variable]):
        self._solutions = solutions
        self._variables = variables

    def variables(self) -> List[Variable]:
        return list(self._variables)

    def solutions(self, graph: Graph) -> Iterator[Bindings]:
        return iter(self._solutions)


def _drop_subsumed_solutions(solutions: List[Bindings]) -> List[Bindings]:
    """Remove solutions strictly subsumed by a compatible larger one.

    OPTIONAL compensation for the scatter-gather merge: a partition whose
    *replicated* triples satisfy the required pattern but whose instance
    data cannot extend the OPTIONAL block emits the pass-through (unbound)
    row, while the partition holding the matching instance data emits the
    extended row — the single-graph oracle would produce only the latter.
    Operating on *full* (pre-projection) solution mappings, a left-join
    chain can never legitimately yield both a solution and a compatible
    strict extension of it (a pass-through happens only when zero
    extensions exist for that exact input row), so every compatibly
    subsumed solution in the merged set is a federation artifact and is
    dropped.  Solutions are bucketed by their largest common domain — the
    variables bound in *every* solution (the required pattern's, at least)
    — so the quadratic check only runs inside buckets that agree there.
    """
    if len(solutions) < 2:
        return solutions
    shared: Set[Variable] = set(solutions[0])
    full_domain: Set[Variable] = set(solutions[0])
    for solution in solutions[1:]:
        domain = set(solution)
        shared &= domain
        full_domain |= domain
    if shared == full_domain:
        return solutions  # every solution binds the same variables
    buckets: Dict[frozenset, List[Bindings]] = {}
    keyed: List[Tuple[frozenset, Bindings]] = []
    for solution in solutions:
        key = frozenset((var, solution[var]) for var in shared)
        keyed.append((key, solution))
        buckets.setdefault(key, []).append(solution)
    kept: List[Bindings] = []
    for key, solution in keyed:
        subsumed = False
        for other in buckets[key]:
            if len(other) <= len(solution) or other is solution:
                continue
            if all(other.get(var) == term for var, term in solution.items()):
                subsumed = True
                break
        if not subsumed:
            kept.append(solution)
    return kept


def _merge_solution_sets(
    per_graph: Sequence[Sequence[Bindings]],
) -> List[Bindings]:
    """Union the partitions' *full* (pre-projection) solution mappings.

    Identical full mappings collapse to one, and at this level that is
    exactly right: a full solution grounds every pattern atom to a triple,
    so a mapping derivable in two partitions can only be standing on
    triples present in both — i.e. on the *replicated* axioms — and the
    single-graph oracle would produce it once.  Instance-derived mappings
    live in exactly one partition and always survive.  (Collapsing
    *projected* rows here would be wrong: distinct full solutions may
    project to legitimately duplicate rows.)  First-seen order is
    preserved so the merge is deterministic for a fixed partition order;
    solutions decode to plain terms before this point, so mappings from
    shards with different dictionaries compare structurally.
    """
    seen: Set[Bindings] = set()
    merged: List[Bindings] = []
    for solutions in per_graph:
        for solution in solutions:
            if solution not in seen:
                seen.add(solution)
                merged.append(solution)
    return merged


def federated_partition_solutions(
    graph: Graph, text: str
) -> Tuple[List[Variable], List[Bindings]]:
    """One partition's contribution to a federated SELECT.

    Evaluates the ``SELECT *`` modifier-free variant of ``text`` on
    ``graph`` (cached per shard under the federated marker key) and
    returns the full-solution variables and mappings.  This is the
    per-shard half of :func:`federated_query`, split out so a process
    backend can run it *inside* a shard worker and ship only the rows.
    """
    planner = planner_for(graph)
    parsed = planner._parse(text)
    full = replace(
        parsed,
        variables=[],
        distinct=False,
        order_by=None,
        descending=False,
        limit=None,
        offset=0,
    )
    result = planner.query_parsed(graph, _FEDERATED_KEY_PREFIX + text, full)
    return list(result.variables), result.solutions


def merge_federated_solutions(
    parsed,
    per_graph: Sequence[Sequence[Bindings]],
    full_variables: List[Variable],
    anchor_graph: Graph,
) -> QueryResult:
    """Gather per-partition full solutions into one modifier-applied result.

    The parent half of :func:`federated_query`: set-union of the full
    mappings, OPTIONAL subsumption compensation, then one global
    :class:`Projection` (projection, DISTINCT, ORDER BY, LIMIT, OFFSET)
    evaluated against ``anchor_graph`` — which supplies only term
    comparison context, never solutions.
    """
    merged = _merge_solution_sets(per_graph)
    if parsed.optional_patterns:
        merged = _drop_subsumed_solutions(merged)
    # apply the solution modifiers through the single-graph Projection
    # operator itself, so federated modifier semantics can never drift
    # from the oracle's
    projection = Projection(
        _Gathered(merged, full_variables),
        variables=[Variable(name) for name in parsed.variables] or None,
        distinct=parsed.distinct,
        order_by=Variable(parsed.order_by) if parsed.order_by else None,
        descending=parsed.descending,
        limit=parsed.limit,
        offset=parsed.offset,
    )
    return QueryResult(
        "SELECT", list(projection.solutions(anchor_graph)), projection.variables()
    )


def federated_query(graphs: Sequence[Graph], text: str) -> QueryResult:
    """Scatter ``text`` across partition graphs and gather one result.

    The federation contract is **per-partition derivation**: the query is
    evaluated independently on every partition (each through its own
    shared :class:`QueryPlanner`, so untouched partitions answer from
    their version-keyed result caches), so every gathered solution is
    derived entirely from one partition's triples; joins across
    *different* partitions' instance data are out of contract
    (area-partitioned deployments co-locate an area's data precisely so
    the joins that matter stay partition-local).

    Within that contract the gathered result matches the single-graph
    oracle **as a bag**: partitions evaluate a ``SELECT *``
    modifier-free variant, the full solution mappings are set-unioned
    (exact at that level — identical cross-partition mappings can only
    stand on replicated axioms), OPTIONAL pass-through rows that another
    partition extends are dropped (:func:`_drop_subsumed_solutions`), and
    projection (preserving row multiplicities), DISTINCT, ORDER BY (the
    single-graph projection's own sort key), LIMIT and OFFSET are applied
    once, globally, after the merge.  ASK short-circuits on the first
    partition with a match.
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("federated_query needs at least one graph")
    if len(graphs) == 1:
        graph = graphs[0]
        return planner_for(graph).query(graph, text)

    parsed = planner_for(graphs[0])._parse(text)

    if parsed.form == "ASK":
        for graph in graphs:
            result = planner_for(graph).query(graph, text)
            if result.ask:
                return result
        return QueryResult("ASK", [], [])

    # SELECT: every partition evaluates a SELECT * variant — no projection
    # hiding, no DISTINCT, no ORDER/LIMIT/OFFSET — so the merge sees full
    # solution mappings, where set union is *exactly* the oracle's
    # semantics (see _merge_solution_sets); a per-shard cutoff could also
    # drop globally-surviving rows.  The rewritten plan and its unbounded
    # result set are cached per shard under the marker key, preserving the
    # untouched-partition cache hits that make federated serving cheap.
    # Projection (with oracle row multiplicities), DISTINCT, ordering and
    # cutoffs are then applied once, globally.
    per_graph: List[List[Bindings]] = []
    full_variables: List[Variable] = []
    for graph in graphs:
        variables, solutions = federated_partition_solutions(graph, text)
        per_graph.append(solutions)
        full_variables = variables
    return merge_federated_solutions(parsed, per_graph, full_variables, graphs[0])
