"""Materialized standing views with semi-naive delta maintenance.

A dashboard re-running the same SPARQL query every poll cycle gets nothing
from the planner's version-keyed result cache once ingest is continuous:
every write bumps :attr:`~repro.semantics.rdf.graph.Graph.version` and the
whole cached result dies, so steady-state serving cost is O(graph) per
poll.  A :class:`StandingView` keeps the query's *materialized* result
alive instead: it attaches a
:class:`~repro.semantics.rdf.graph.ChangeTracker` to the graph and, on
each refresh, folds the drained :class:`~repro.semantics.rdf.graph.GraphDelta`
into the stored solution set in O(|delta|) — the same semi-naive seeding
trick :meth:`~repro.semantics.rules.RuleEngine.run_incremental` plays for
rules, lifted into the planner's :class:`~repro.semantics.sparql.planner.PlannedBGP`
join machinery:

* every added triple is matched against each required pattern, and each
  match seeds a join of the *remaining* patterns (ordered by the cost
  model under the seed's bound variables), yielding exactly the solutions
  that stand on at least one delta triple;
* the query's FILTERs over required variables are applied to the delta
  rows (conjunctive application to complete rows is equivalent to the
  planner's per-step pushdown);
* OPTIONAL recomputation is confined to the delta-affected subset: a
  delta triple matching an OPTIONAL pattern seeds that block the same
  way, and only the bases whose shared-variable projection matches one of
  the delta extensions re-run their left-join chain;
* removals are journalled item-by-item (``GraphDelta.removed_ids``), so a
  removal that matches no view pattern is *ignored*; a relevant removal —
  or an un-itemised retraction (``clear``), a journal overflow, a prefix
  rebind, or an OPTIONAL shape outside the delta rules — falls back to a
  full re-materialization, decided per view per delta.

Internally the view stores the **full** (pre-projection) solution rows,
grouped per required-pattern solution ("base"), because the left-join
chain processes each base independently: the concatenation of per-base
row lists is bag-equal to the oracle's full solution multiset, and
projection / DISTINCT / ORDER BY / LIMIT / OFFSET run through the ordinary
:class:`~repro.semantics.sparql.algebra.Projection` on every serve, so
modifier semantics can never drift from the single-graph oracle.

Subscribers receive an itemised :class:`ViewDelta` (added / removed full
rows) on every refresh that changed the view — even a full refresh diffs
the old and new row multisets — which is what lets CEP windows follow a
standing query without ever re-polling it.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.semantics.rdf.graph import Graph, GraphDelta
from repro.semantics.rdf.term import Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.algebra import Projection, apply_filter
from repro.semantics.sparql.bindings import EMPTY_BINDINGS, Bindings
from repro.semantics.sparql.evaluator import QueryResult, _build_filter
from repro.semantics.sparql.parser import ParsedQuery, parse_query


class ViewDelta:
    """The itemised change a standing view observed in one refresh.

    ``added`` / ``removed`` hold **full** (pre-projection) solution rows;
    a row appearing n times changed multiplicity by n.  ``full_refresh``
    records that the view re-materialized from scratch to produce this
    delta (the rows are still itemised — subscribers never need to
    re-poll).
    """

    __slots__ = ("view", "added", "removed", "full_refresh")

    def __init__(
        self,
        view: "StandingView",
        added: List[Bindings],
        removed: List[Bindings],
        full_refresh: bool = False,
    ):
        self.view = view
        self.added = added
        self.removed = removed
        self.full_refresh = full_refresh

    def __bool__(self) -> bool:
        return bool(self.added) or bool(self.removed)

    def __repr__(self) -> str:
        return (
            f"ViewDelta(added={len(self.added)}, removed={len(self.removed)}, "
            f"full_refresh={self.full_refresh})"
        )


ViewListener = Callable[[ViewDelta], None]


class StandingView:
    """A continuously maintained materialized result for one query.

    Parameters
    ----------
    graph:
        The graph (or shard) the view watches.
    text:
        The query text — kept for introspection and registry keys.
    parsed:
        The parsed query to maintain; parsed from ``text`` when omitted.
        The federator registers a modifier-stripped variant here while
        keeping the original ``text`` as the label.
    name:
        Optional human-readable name (broker topics, dashboards).
    seed:
        Optional pre-materialized ``base -> full rows`` mapping (recovered
        from a snapshot's view-rows section).  When given, the initial
        materialization is skipped entirely — the caller asserts the seed
        matches the graph's current state.
    """

    def __init__(
        self,
        graph: Graph,
        text: str,
        parsed: Optional[ParsedQuery] = None,
        name: Optional[str] = None,
        seed: Optional[Dict[Bindings, List[Bindings]]] = None,
    ):
        self.graph = graph
        self.text = text
        self.name = name or text
        self.parsed = parsed if parsed is not None else parse_query(text)
        self.form = self.parsed.form
        self._lock = threading.RLock()
        self._tracker = graph.track_changes()
        self._listeners: List[ViewListener] = []
        #: Number of refreshes folded in as deltas (O(|delta|)).
        self.delta_updates = 0
        #: Number of refreshes that re-materialized from scratch.
        self.full_refreshes = 0
        # base (required-pattern solution) -> final full rows, in a dict so
        # commit order stays deterministic
        self._bases: Dict[Bindings, List[Bindings]] = {}
        self._cached: Optional[Tuple[List[Bindings], List[Variable]]] = None
        self._block_plans = None
        self._generation = -1
        #: True when the initial rows came from a snapshot seed rather
        #: than a from-scratch materialization.
        self.seeded = seed is not None
        self._rebind()
        if seed is not None:
            self._bases = dict(seed)
        else:
            self._materialize()

    # ------------------------------------------------------------------ #
    # resolution against the graph's namespaces
    # ------------------------------------------------------------------ #

    def _rebind(self) -> None:
        """(Re)resolve patterns and filters against the current prefixes."""
        from repro.semantics.sparql.planner import _resolve_patterns

        self._core: List[Triple] = _resolve_patterns(self.parsed.patterns, self.graph)
        self._optional: List[List[Triple]] = [
            _resolve_patterns(block, self.graph)
            for block in self.parsed.optional_patterns
        ]
        core_vars: Set[Variable] = set()
        for pattern in self._core:
            core_vars.update(pattern.variables())
        self._core_vars = core_vars
        self._core_filters: List[Callable[[Bindings], bool]] = []
        self._outer_filters: List[Callable[[Bindings], bool]] = []
        for flt in self.parsed.filters:
            var, predicate = _build_filter(flt, self.graph)
            # a filter over a required variable commutes with the left
            # joins (they never rebind required variables), so it can run
            # on bases before extension; anything else keeps the naive
            # placement above the left-join chain
            if var in core_vars and self._core:
                self._core_filters.append(predicate)
            else:
                self._outer_filters.append(predicate)
        # per OPTIONAL block: the variables it shares with the required
        # part, and whether the delta rules apply (the block must join the
        # left side through required variables only — sharing a variable
        # introduced by an *earlier* OPTIONAL, or nothing at all, sends the
        # view down the full-refresh path instead)
        self._shared: List[Set[Variable]] = []
        self._block_supported: List[bool] = []
        earlier_optional_vars: Set[Variable] = set()
        for block in self._optional:
            block_vars: Set[Variable] = set()
            for pattern in block:
                block_vars.update(pattern.variables())
            shared = block_vars & core_vars
            supported = bool(shared) and not (block_vars & earlier_optional_vars)
            self._shared.append(shared)
            self._block_supported.append(supported)
            earlier_optional_vars |= block_vars - core_vars
        # written-order full-solution variables, mirroring the LeftJoin
        # chain's variables()
        seen: List[Variable] = []
        for pattern in self._core:
            for var in pattern.variables():
                if var not in seen:
                    seen.append(var)
        for block in self._optional:
            for pattern in block:
                for var in pattern.variables():
                    if var not in seen:
                        seen.append(var)
        self._full_variables = seen
        self._generation = self.graph.namespaces.generation

    # ------------------------------------------------------------------ #
    # evaluation helpers
    # ------------------------------------------------------------------ #

    def _plan_rest(self, patterns: Sequence[Triple], bound: Sequence[Variable]):
        from repro.semantics.sparql.planner import plan_patterns

        return plan_patterns(self.graph, list(patterns), bound)

    def _planned_blocks(self):
        # planned once per refresh cycle (the join order only depends on
        # the cost model, never on correctness)
        if self._block_plans is None:
            self._block_plans = [self._plan_rest(block, ()) for block in self._optional]
        return self._block_plans

    def _extend(self, base: Bindings) -> List[Bindings]:
        """Run the left-join chain and outer filters for one base row."""
        rows = [base]
        for planned in self._planned_blocks():
            next_rows: List[Bindings] = []
            for row in rows:
                extended = list(planned.solutions_from(self.graph, row))
                if extended:
                    next_rows.extend(extended)
                else:
                    next_rows.append(row)
            rows = next_rows
        for predicate in self._outer_filters:
            rows = [row for row in rows if apply_filter(predicate, row)]
        return rows

    def _core_solutions_from_delta(self, added: Sequence[Triple]) -> List[Bindings]:
        """Required-pattern solutions standing on >= 1 delta triple."""
        found: List[Bindings] = []
        planned_rest: Dict[int, object] = {}
        for index, pattern in enumerate(self._core):
            rest = self._core[:index] + self._core[index + 1:]
            planned = None
            for triple in added:
                match = pattern.matches(triple)
                if match is None:
                    continue
                if planned is None:
                    planned = planned_rest.get(index)
                    if planned is None:
                        planned = self._plan_rest(rest, list(pattern.variables()))
                        planned_rest[index] = planned
                seed = Bindings(match)
                found.extend(planned.solutions_from(self.graph, seed))
        return found

    def _block_solutions_from_delta(
        self, block: Sequence[Triple], added: Sequence[Triple]
    ) -> List[Bindings]:
        """Full OPTIONAL-block solutions standing on >= 1 delta triple."""
        found: List[Bindings] = []
        for index, pattern in enumerate(block):
            rest = list(block[:index]) + list(block[index + 1:])
            planned = None
            for triple in added:
                match = pattern.matches(triple)
                if match is None:
                    continue
                if planned is None:
                    planned = self._plan_rest(rest, list(pattern.variables()))
                seed = Bindings(match)
                found.extend(planned.solutions_from(self.graph, seed))
        return found

    def _matches_any_pattern(self, triple: Triple) -> bool:
        for pattern in self._core:
            if pattern.matches(triple) is not None:
                return True
        for block in self._optional:
            for pattern in block:
                if pattern.matches(triple) is not None:
                    return True
        return False

    def _passes_core_filters(self, base: Bindings) -> bool:
        return all(apply_filter(p, base) for p in self._core_filters)

    # ------------------------------------------------------------------ #
    # materialization and maintenance
    # ------------------------------------------------------------------ #

    def _materialize(self) -> None:
        """Recompute bases and rows from scratch (current graph state)."""
        self._block_plans = None
        bases: Dict[Bindings, List[Bindings]] = {}
        if self._core:
            planned = self._plan_rest(self._core, ())
            candidates = planned.solutions(self.graph)
        else:
            candidates = iter([EMPTY_BINDINGS])
        for base in candidates:
            if base in bases or not self._passes_core_filters(base):
                continue
            bases[base] = self._extend(base)
        self._bases = bases
        self._cached = None

    def _apply_delta(self, delta: GraphDelta) -> ViewDelta:
        """Fold one drained delta into the materialized rows."""
        self._block_plans = None
        if self._generation != self.graph.namespaces.generation:
            # a prefix rebind changes what the CURIEs in the query resolve
            # to: re-resolve everything and start over
            self._rebind()
            return self._full_refresh_delta()
        if delta.overflowed or (delta.retracted and not delta.removals_itemised):
            return self._full_refresh_delta()
        if delta.retracted:
            for triple in delta.removed:
                if self._matches_any_pattern(triple):
                    return self._full_refresh_delta()
            # every removal is irrelevant to this view's patterns: the adds
            # can be folded in as if the removals never happened
        added = [t for t in delta.added if self._matches_any_pattern(t)]
        if not added:
            self.delta_updates += 1
            return ViewDelta(self, [], [])

        staged_new: Dict[Bindings, List[Bindings]] = {}
        staged_updates: Dict[Bindings, List[Bindings]] = {}

        # 1. new required-pattern solutions, semi-naively seeded
        for base in self._core_solutions_from_delta(added):
            if base in self._bases or base in staged_new:
                continue
            if not self._passes_core_filters(base):
                continue
            staged_new[base] = self._extend(base)

        # 2. OPTIONAL deltas: recompute only the affected bases
        for index, block in enumerate(self._optional):
            block_solutions = self._block_solutions_from_delta(block, added)
            if not block_solutions:
                continue
            if not self._block_supported[index]:
                return self._full_refresh_delta()
            shared = self._shared[index]
            keys = {solution.project(shared) for solution in block_solutions}
            for base in self._bases:
                if base in staged_updates:
                    continue
                if base.project(shared) in keys:
                    staged_updates[base] = self._extend(base)

        # 3. commit and diff
        added_rows: List[Bindings] = []
        removed_rows: List[Bindings] = []
        for base, rows in staged_updates.items():
            old = Counter(self._bases[base])
            new = Counter(rows)
            added_rows.extend((new - old).elements())
            removed_rows.extend((old - new).elements())
            self._bases[base] = rows
        for base, rows in staged_new.items():
            added_rows.extend(rows)
            self._bases[base] = rows
        self.delta_updates += 1
        if added_rows or removed_rows:
            self._cached = None
        return ViewDelta(self, added_rows, removed_rows)

    def _full_refresh_delta(self) -> ViewDelta:
        old = Counter(row for rows in self._bases.values() for row in rows)
        self._materialize()
        new = Counter(row for rows in self._bases.values() for row in rows)
        self.full_refreshes += 1
        return ViewDelta(
            self,
            list((new - old).elements()),
            list((old - new).elements()),
            full_refresh=True,
        )

    # ------------------------------------------------------------------ #
    # the serving API
    # ------------------------------------------------------------------ #

    def refresh(self) -> Optional[ViewDelta]:
        """Fold any pending graph mutations in; notify subscribers.

        Returns the :class:`ViewDelta` when the graph moved (possibly
        empty, if the mutations did not touch this view), or ``None`` when
        there was nothing to do.
        """
        with self._lock:
            if (
                not self._tracker.dirty
                and self._generation == self.graph.namespaces.generation
            ):
                return None
            delta = self._tracker.drain()
            try:
                view_delta = self._apply_delta(delta)
            except Exception:
                # leave the unconsumed mutations in front of the journal so
                # the next refresh retries instead of going silently stale
                self._tracker.requeue(delta)
                raise
        if view_delta or view_delta.full_refresh:
            for listener in list(self._listeners):
                listener(view_delta)
        return view_delta

    def rows(self) -> List[Bindings]:
        """The current full (pre-projection) solution rows."""
        with self._lock:
            self.refresh()
            return [row for rows in self._bases.values() for row in rows]

    def export_rows(self) -> Dict[Bindings, List[Bindings]]:
        """The refreshed ``base -> full rows`` mapping (snapshot payload).

        Persistence stores this alongside the graph image so a restart can
        seed a re-registered view without re-materializing it.
        """
        with self._lock:
            self.refresh()
            return {base: list(rows) for base, rows in self._bases.items()}

    def result(self) -> QueryResult:
        """The current query result, refreshed and with modifiers applied.

        Each call returns a fresh :class:`QueryResult` over copied lists,
        mirroring the planner's result-cache contract.
        """
        from repro.semantics.sparql.planner import _Gathered

        with self._lock:
            self.refresh()
            if self._cached is None:
                all_rows = [row for rows in self._bases.values() for row in rows]
                if self.form == "ASK":
                    self._cached = (all_rows[:1], [])
                else:
                    projection = Projection(
                        _Gathered(all_rows, list(self._full_variables)),
                        variables=[Variable(name) for name in self.parsed.variables]
                        or None,
                        distinct=self.parsed.distinct,
                        order_by=Variable(self.parsed.order_by)
                        if self.parsed.order_by
                        else None,
                        descending=self.parsed.descending,
                        limit=self.parsed.limit,
                        offset=self.parsed.offset,
                    )
                    self._cached = (
                        list(projection.solutions(self.graph)),
                        projection.variables(),
                    )
            solutions, variables = self._cached
            return QueryResult(self.form, list(solutions), list(variables))

    def subscribe(self, listener: ViewListener) -> None:
        """Register a callback receiving every refresh's :class:`ViewDelta`."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: ViewListener) -> None:
        """Remove a previously registered callback (idempotent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def stats(self) -> Dict[str, object]:
        """Maintenance counters for observability (and the benchmark)."""
        with self._lock:
            return {
                "name": self.name,
                "form": self.form,
                "bases": len(self._bases),
                "rows": sum(len(rows) for rows in self._bases.values()),
                "delta_updates": self.delta_updates,
                "full_refreshes": self.full_refreshes,
                "seeded": self.seeded,
            }

    def __repr__(self) -> str:
        return (
            f"<StandingView {self.name!r} bases={len(self._bases)} "
            f"delta_updates={self.delta_updates} full_refreshes={self.full_refreshes}>"
        )
