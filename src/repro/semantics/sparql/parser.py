"""A small parser for textual SELECT / ASK queries.

The grammar is a practical subset of SPARQL sufficient for the middleware's
semantic service queries and the examples in the paper's scenario (looking
up sensors for a property, fetching observations above a threshold, ...):

.. code-block:: sparql

    SELECT ?sensor ?value WHERE {
        ?obs rdf:type ssn:Observation .
        ?obs ssn:observedBy ?sensor .
        ?obs ssn:hasValue ?value .
        FILTER (?value > 30)
    } ORDER BY DESC(?value) LIMIT 10

Supported: SELECT (with DISTINCT, ``*`` or a variable list), ASK, one WHERE
block of triple patterns, FILTER with a single numeric or equality
comparison, OPTIONAL blocks, ORDER BY [DESC], LIMIT, OFFSET.  CURIEs are
expanded against the graph's namespace manager at evaluation time, so the
parser produces a *template* resolved by the evaluator.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class QueryParseError(ValueError):
    """Raised when a query string cannot be parsed."""


@dataclass
class ParsedPattern:
    """A raw triple pattern with terms still in textual form."""

    subject: str
    predicate: str
    object: str


@dataclass
class ParsedFilter:
    """A FILTER comparison ``?var OP constant``."""

    variable: str
    op: str
    value: str


@dataclass
class ParsedQuery:
    """The outcome of parsing a query string."""

    form: str                      # "SELECT" or "ASK"
    variables: List[str] = field(default_factory=list)   # empty means '*'
    distinct: bool = False
    patterns: List[ParsedPattern] = field(default_factory=list)
    optional_patterns: List[List[ParsedPattern]] = field(default_factory=list)
    filters: List[ParsedFilter] = field(default_factory=list)
    order_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None
    offset: int = 0


# Canonical numeric-literal token syntax: an optional sign, digits,
# optionally a decimal point with digits.  The evaluator's term / FILTER
# value resolution imports these so the grammar is defined exactly once
# (note: inside a triple pattern the tokenizer's word boundary cannot see a
# sign after whitespace, so pattern terms are effectively unsigned; FILTER
# values accept the full signed syntax).
NUMERIC_TOKEN = r"[-+]?\d+(?:\.\d+)?"
INTEGER_LITERAL_RE = re.compile(r"[-+]?\d+\Z")
DECIMAL_LITERAL_RE = re.compile(r"[-+]?\d+\.\d+\Z")

_TERM_RE = (
    r'(?:<[^>]*>|\?[A-Za-z_]\w*|[A-Za-z_][\w\-]*:[\w\-.]+|"(?:[^"\\]|\\.)*"'
    rf'(?:@[A-Za-z\-]+|\^\^[^\s]+)?|\b{NUMERIC_TOKEN}\b|\ba\b)'
)
_PATTERN_RE = re.compile(
    rf"\s*(?P<s>{_TERM_RE})\s+(?P<p>{_TERM_RE})\s+(?P<o>{_TERM_RE})\s*\.?\s*"
)
_FILTER_RE = re.compile(
    r"FILTER\s*\(\s*\?(?P<var>\w+)\s*(?P<op><=|>=|!=|=|<|>)\s*(?P<value>[^)]+?)\s*\)",
    re.IGNORECASE,
)
_OPTIONAL_RE = re.compile(r"OPTIONAL\s*\{(?P<body>[^{}]*)\}", re.IGNORECASE)


def _parse_patterns(body: str) -> List[ParsedPattern]:
    patterns: List[ParsedPattern] = []
    for statement in body.split(" ."):
        statement = statement.strip().rstrip(".").strip()
        if not statement:
            continue
        match = _PATTERN_RE.fullmatch(statement + " ")
        if match is None:
            match = _PATTERN_RE.match(statement)
        if match is None:
            raise QueryParseError(f"cannot parse triple pattern: {statement!r}")
        patterns.append(
            ParsedPattern(match.group("s"), match.group("p"), match.group("o"))
        )
    return patterns


def parse_query(text: str) -> ParsedQuery:
    """Parse a SELECT or ASK query string into a :class:`ParsedQuery`."""
    normalized = " ".join(text.strip().split())
    if not normalized:
        raise QueryParseError("empty query")

    form_match = re.match(
        r"(SELECT|ASK)\s*(DISTINCT)?\s*(.*?)\s*WHERE\s*\{(.*)\}\s*(.*)$",
        normalized,
        re.IGNORECASE | re.DOTALL,
    )
    if form_match is None:
        raise QueryParseError("query must be of the form 'SELECT ... WHERE { ... }' or 'ASK WHERE { ... }'")

    form = form_match.group(1).upper()
    distinct = form_match.group(2) is not None
    projection = form_match.group(3).strip()
    where_body = form_match.group(4)
    modifiers = form_match.group(5) or ""

    parsed = ParsedQuery(form=form, distinct=distinct)

    if form == "SELECT":
        if projection in ("", "*"):
            parsed.variables = []
        else:
            parsed.variables = re.findall(r"\?(\w+)", projection)
            if not parsed.variables:
                raise QueryParseError(f"cannot parse SELECT projection: {projection!r}")

    # OPTIONAL blocks
    def _extract_optional(match: "re.Match[str]") -> str:
        parsed.optional_patterns.append(_parse_patterns(match.group("body")))
        return " "

    where_body = _OPTIONAL_RE.sub(_extract_optional, where_body)

    # FILTER clauses
    def _extract_filter(match: "re.Match[str]") -> str:
        parsed.filters.append(
            ParsedFilter(match.group("var"), match.group("op"), match.group("value").strip())
        )
        return " "

    where_body = _FILTER_RE.sub(_extract_filter, where_body)

    parsed.patterns = _parse_patterns(where_body)
    if not parsed.patterns:
        raise QueryParseError("WHERE clause contains no triple patterns")

    # Solution modifiers
    order_match = re.search(
        r"ORDER\s+BY\s+(DESC\s*\(\s*)?\?(\w+)\)?", modifiers, re.IGNORECASE
    )
    if order_match:
        parsed.descending = order_match.group(1) is not None
        parsed.order_by = order_match.group(2)
    limit_match = re.search(r"LIMIT\s+(\d+)", modifiers, re.IGNORECASE)
    if limit_match:
        parsed.limit = int(limit_match.group(1))
    offset_match = re.search(r"OFFSET\s+(\d+)", modifiers, re.IGNORECASE)
    if offset_match:
        parsed.offset = int(offset_match.group(1))

    return parsed
