"""The asyncio HTTP/WebSocket gateway over the unified embedding API.

One :class:`Gateway` fronts one engine — a
:class:`~repro.core.middleware.SemanticMiddleware`, a
:class:`~repro.dews.system.DroughtEarlyWarningSystem`, or a bare
:class:`~repro.core.ontology_layer.OntologySegmentLayer` — through the six
unified calls (``ingest_batch`` / ``query`` / ``register_standing`` /
``subscribe`` / ``health`` / ``statistics``).  Route table:

    POST /v1/ingest          ingest a batch of raw observation records
    POST /v1/query           SPARQL query (``{"query", "entail"}``)
    POST /v1/views           register a standing view
    GET  /v1/views           list registered views
    GET  /v1/views/<name>    the view's current result (federated query)
    GET  /v1/health          engine health report
    GET  /v1/statistics      engine statistics snapshot
    GET  /v1/metrics         gateway-side metrics (middleware, loop lag)
    GET  /v1/subscribe       WebSocket upgrade; ``?topics=p1,p2`` patterns

The engine is single-writer (graph, pipeline and planner caches are not
safe under concurrent mutation), so every engine call is serialized
through a bounded worker-thread executor — the event loop itself never
runs engine code and never blocks on it.  Each HTTP route runs the
middleware stack (request-context → metrics → rate-limit → cache);
exceptions surface as their :data:`STATUS_BY_CODE`-mapped statuses.
"""

from __future__ import annotations

import asyncio
import functools
import inspect
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import (
    BadRequestError,
    NotFoundError,
    QueryError,
    ReproError,
)
from repro.serving import websocket as ws
from repro.serving.bridge import SubscriptionBridge, lag_marker
from repro.serving.http import (
    Request,
    Response,
    peer_name,
    read_request,
    write_response,
)
from repro.serving.middleware import (
    CacheMiddleware,
    MetricsMiddleware,
    RateLimitMiddleware,
    RequestContextMiddleware,
    build_stack,
)
from repro.serving.serialize import (
    json_safe,
    message_to_json,
    query_result_to_json,
    records_from_json,
)

#: The one exception → HTTP status table.  Codes, not classes, are the
#: contract: any :class:`~repro.errors.ReproError` raised anywhere below
#: the gateway maps here, and unknown codes fall back to 500.
STATUS_BY_CODE: Dict[str, int] = {
    "bad_request": 400,
    "query_error": 400,
    "not_found": 404,
    "payload_too_large": 413,
    "validation_rejected": 422,
    "rate_limited": 429,
    "internal": 500,
    "store_metadata": 500,
    "shard_unavailable": 503,
}


@dataclass
class ServingConfig:
    """Tunables of the serving front door."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (read it back from ``Gateway.port``).
    port: int = 0
    #: Request body ceiling in bytes (JSON record batches are compact).
    max_body: int = 1_000_000
    #: Worker threads for engine calls.  The engine is single-writer —
    #: leave this at 1 unless the engine grows internal synchronisation.
    engine_workers: int = 1
    #: In-flight + queued engine calls before further requests wait.
    max_pending: int = 64
    #: Token-bucket refill rate per client (requests/second); ``0`` turns
    #: rate limiting off.
    rate_limit_rate: float = 0.0
    #: Token-bucket burst capacity per client.
    rate_limit_burst: int = 20
    #: LRU capacity of the version-keyed response cache.
    cache_capacity: int = 256
    #: Per-WebSocket bounded send queue (drop-oldest beyond this).
    ws_queue_limit: int = 256
    #: Idle seconds between server pings on a quiet subscription.
    ws_ping_interval: float = 20.0
    #: Transport write-buffer high-water mark per WebSocket; small so a
    #: slow consumer exerts backpressure on the sender (which then sheds
    #: into the bounded queue) instead of ballooning process memory.
    ws_write_buffer: int = 16 * 1024
    #: Zero the broker's simulated per-hop delivery latency on start.  The
    #: gateway *is* the delivery hop in a served deployment; leaving the
    #: simulated latency on would park every publication on a scheduler
    #: nobody pumps.
    zero_broker_latency: bool = True


class Gateway:
    """The asyncio server.  ``await start()``, then ``await stop()``.

    Synchronous hosts (tests, benchmarks, ``examples/serve_dews.py``) use
    :class:`GatewayServer`, which runs one of these on a background
    thread.
    """

    def __init__(self, engine: Any, config: Optional[ServingConfig] = None):
        self.engine = engine
        self.config = config or ServingConfig()
        self._layer = self._resolve_layer(engine)
        self._broker = getattr(engine, "broker", None)
        try:
            signature = inspect.signature(engine.register_standing)
            self._register_supports_push = "push" in signature.parameters
        except (TypeError, ValueError):
            self._register_supports_push = False

        #: Monotone counter of served mutations; part of the cache key.
        self._mutations = 0
        self._views: Dict[str, Any] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._engine_gate: Optional[asyncio.Semaphore] = None
        self._monitor_task: Optional[asyncio.Task] = None
        self._bridges: List[SubscriptionBridge] = []
        self._started_at = 0.0
        self.port: Optional[int] = None

        #: Event-loop responsiveness, measured from inside the loop: the
        #: worst observed gap beyond a 10 ms sleep.  Stays ~0 unless
        #: something blocked the loop (which nothing should).
        self.max_loop_lag = 0.0
        self._lag_samples = 0

        self.context = RequestContextMiddleware(STATUS_BY_CODE)
        self.metrics = MetricsMiddleware()
        self.rate_limit = RateLimitMiddleware(
            self.config.rate_limit_rate,
            self.config.rate_limit_burst,
            exempt={"/v1/health", "/v1/metrics"},
        )
        self.cache = CacheMiddleware(
            self._version_token,
            cacheable={("POST", "/v1/query")},
            capacity=self.config.cache_capacity,
        )
        self._routes: Dict[Tuple[str, str], Callable] = {
            ("POST", "/v1/ingest"): self._route_ingest,
            ("POST", "/v1/query"): self._route_query,
            ("POST", "/v1/views"): self._route_register_view,
            ("GET", "/v1/views"): self._route_list_views,
            ("GET", "/v1/health"): self._route_health,
            ("GET", "/v1/statistics"): self._route_statistics,
            ("GET", "/v1/metrics"): self._route_metrics,
        }
        self._stack = build_stack(
            [self.context, self.metrics, self.rate_limit, self.cache],
            self._dispatch,
        )

    # ---------------------------------------------------------------- #
    # engine plumbing
    # ---------------------------------------------------------------- #

    @staticmethod
    def _resolve_layer(engine: Any) -> Optional[Any]:
        """The ontology layer under any of the three embedding surfaces."""
        if hasattr(engine, "graphs") and hasattr(engine, "pipeline"):
            return engine  # a bare OntologySegmentLayer
        middleware = getattr(engine, "middleware", engine)
        return getattr(middleware, "ontology_layer", None)

    def _version_token(self) -> tuple:
        """Cache key component that changes whenever answers could.

        The gateway's own mutation counter covers everything served
        through it; the graphs' version numbers additionally catch
        out-of-band library writes when the graphs live in-process.
        """
        versions: tuple = ()
        if self._layer is not None:
            try:
                versions = tuple(graph.version for graph in self._layer.graphs)
            except Exception:
                versions = ()
        return (self._mutations, versions)

    async def _run_engine(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        """Run one engine call on the bounded executor, off the loop."""
        async with self._engine_gate:
            return await self._loop.run_in_executor(
                self._executor, functools.partial(fn, *args, **kwargs)
            )

    # ---------------------------------------------------------------- #
    # lifecycle
    # ---------------------------------------------------------------- #

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.engine_workers,
            thread_name_prefix="gateway-engine",
        )
        self._engine_gate = asyncio.Semaphore(self.config.max_pending)
        if self.config.zero_broker_latency and self._broker is not None:
            # the service boundary replaces the simulated delivery hop;
            # a nonzero latency would defer every publication onto a
            # simulation scheduler nobody pumps while serving
            self._broker.delivery_latency = 0.0
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()
        self._monitor_task = self._loop.create_task(self._monitor_loop())

    async def stop(self) -> None:
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        for bridge in list(self._bridges):
            bridge.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def _monitor_loop(self) -> None:
        interval = 0.01
        while True:
            before = self._loop.time()
            await asyncio.sleep(interval)
            lag = self._loop.time() - before - interval
            if lag > self.max_loop_lag:
                self.max_loop_lag = lag
            self._lag_samples += 1

    # ---------------------------------------------------------------- #
    # connection handling
    # ---------------------------------------------------------------- #

    async def _handle_connection(self, reader, writer) -> None:
        host, client = peer_name(writer)
        try:
            while True:
                try:
                    request = await read_request(reader, self.config.max_body)
                except ReproError as exc:
                    status = STATUS_BY_CODE.get(exc.code, 500)
                    await write_response(
                        writer,
                        Response.json(exc.to_payload(), status=status),
                        keep_alive=False,
                    )
                    return
                if request is None:
                    return
                request.client = client
                if request.path == "/v1/subscribe":
                    await self._handle_websocket(request, reader, writer)
                    return
                response = await self._stack(request)
                keep_alive = (
                    request.header("connection", "keep-alive") or ""
                ).lower() != "close"
                await write_response(writer, response, keep_alive=keep_alive)
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ---------------------------------------------------------------- #
    # HTTP routes
    # ---------------------------------------------------------------- #

    async def _dispatch(self, request: Request) -> Response:
        handler = self._routes.get((request.method, request.path))
        if handler is not None:
            request.context["route"] = f"{request.method} {request.path}"
            return await handler(request)
        if request.method == "GET" and request.path.startswith("/v1/views/"):
            name = request.path[len("/v1/views/") :]
            if name and "/" not in name:
                request.context["route"] = "GET /v1/views/<name>"
                return await self._route_view_result(request, name)
        if any(path == request.path for _, path in self._routes):
            allowed = sorted(
                method for method, path in self._routes if path == request.path
            )
            return Response.json(
                {"error": "method_not_allowed", "allow": allowed},
                status=405,
                Allow=", ".join(allowed),
            )
        raise NotFoundError(f"no route for {request.method} {request.path}")

    async def _route_ingest(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict) or "records" not in payload:
            raise BadRequestError("expected a JSON object with a 'records' array")
        records = records_from_json(payload["records"])
        receipt = await self._run_engine(self.engine.ingest_batch, records)
        self._mutations += 1
        body = receipt.to_payload()
        body["events"] = len(receipt)
        return Response.json(body)

    async def _route_query(self, request: Request) -> Response:
        payload = request.json()
        text = payload.get("query") if isinstance(payload, dict) else None
        if not isinstance(text, str) or not text.strip():
            raise BadRequestError("expected a JSON object with a 'query' string")
        entail = bool(payload.get("entail", False))
        try:
            result = await self._run_engine(self.engine.query, text, entail=entail)
        except (ValueError, KeyError) as exc:
            raise QueryError.wrap(exc)
        return Response.json(query_result_to_json(result))

    async def _route_register_view(self, request: Request) -> Response:
        payload = request.json()
        if not isinstance(payload, dict):
            raise BadRequestError("expected a JSON object")
        text = payload.get("query")
        if not isinstance(text, str) or not text.strip():
            raise BadRequestError("expected a 'query' string")
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            raise BadRequestError("'name' must be a string")
        push = bool(payload.get("push", False))
        if name is not None and name in self._views:
            raise BadRequestError(
                f"view {name!r} is already registered", detail={"name": name}
            )
        if push and not self._register_supports_push:
            raise BadRequestError(
                "this engine does not support push-mode views"
            )
        try:
            if self._register_supports_push:
                handle = await self._run_engine(
                    self.engine.register_standing, text, name=name, push=push
                )
            else:
                handle = await self._run_engine(
                    self.engine.register_standing, text, name=name
                )
        except ValueError as exc:
            raise QueryError.wrap(exc)
        key = handle.name or name or text
        self._views[key] = handle
        self._mutations += 1
        return Response.json(handle.to_payload(), status=201)

    async def _route_list_views(self, request: Request) -> Response:
        return Response.json(
            {"views": [handle.to_payload() for handle in self._views.values()]}
        )

    async def _route_view_result(self, request: Request, name: str) -> Response:
        handle = self._views.get(name)
        if handle is None:
            raise NotFoundError(f"no view named {name!r}", detail={"name": name})
        # served through the engine's query path, which federates across
        # partitions and applies the full modifier pipeline — and is
        # answered *from* the materialized view by the planner
        result = await self._run_engine(self.engine.query, handle.text)
        body = query_result_to_json(result)
        body["view"] = handle.to_payload()
        return Response.json(body)

    async def _route_health(self, request: Request) -> Response:
        report = await self._run_engine(self.engine.health)
        status = 200 if report.get("healthy", False) else 503
        return Response.json(json_safe(report), status=status)

    async def _route_statistics(self, request: Request) -> Response:
        snapshot = await self._run_engine(self.engine.statistics)
        return Response.json(json_safe(snapshot))

    async def _route_metrics(self, request: Request) -> Response:
        return Response.json(
            {
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "middleware": self.metrics.snapshot(),
                "cache": self.cache.snapshot(),
                "rate_limited": self.rate_limit.limited,
                "unhandled_errors": self.context.unhandled_errors,
                "subscriptions": {
                    "open": len(self._bridges),
                    "bridges": [bridge.stats() for bridge in self._bridges],
                },
                "event_loop": {
                    "max_lag_ms": round(1000 * self.max_loop_lag, 3),
                    "samples": self._lag_samples,
                },
            }
        )

    # ---------------------------------------------------------------- #
    # WebSocket subscriptions
    # ---------------------------------------------------------------- #

    async def _handle_websocket(self, request: Request, reader, writer) -> None:
        if not request.wants_upgrade:
            await write_response(
                writer,
                Response.json(
                    {"error": "upgrade_required", "message": "use a WebSocket client"},
                    status=426,
                ),
                keep_alive=False,
            )
            return
        key = request.header("sec-websocket-key")
        if not key:
            await write_response(
                writer,
                Response.json(
                    {"error": "bad_request", "message": "missing Sec-WebSocket-Key"},
                    status=400,
                ),
                keep_alive=False,
            )
            return
        try:
            self.rate_limit.check(request)
        except ReproError as exc:
            await write_response(
                writer,
                Response.json(exc.to_payload(), status=STATUS_BY_CODE.get(exc.code, 500)),
                keep_alive=False,
            )
            return

        patterns = [
            pattern.strip()
            for pattern in (request.query.get("topics") or "#").split(",")
            if pattern.strip()
        ] or ["#"]

        writer.write(ws.handshake_response(key))
        await writer.drain()
        # a slow reader should stall the sender quickly (and shed load in
        # the bounded bridge queue) instead of buffering without bound
        writer.transport.set_write_buffer_limits(
            high=self.config.ws_write_buffer,
            low=self.config.ws_write_buffer // 2,
        )

        bridge = SubscriptionBridge(self._loop, limit=self.config.ws_queue_limit)
        self._bridges.append(bridge)
        subscriptions = []
        for pattern in patterns:
            subscription = self.engine.subscribe(pattern, bridge.push)
            if subscription is not None:
                subscriptions.append(subscription)

        async def send_json(payload: dict) -> None:
            writer.write(ws.encode_text(json.dumps(payload, separators=(",", ":"))))
            await writer.drain()

        async def sender() -> None:
            await send_json({"type": "ready", "topics": patterns})
            while not bridge.closed:
                dropped, items = await bridge.drain(
                    timeout=self.config.ws_ping_interval
                )
                if bridge.closed:
                    return
                if dropped:
                    await send_json(lag_marker(dropped))
                for item in items:
                    await send_json(message_to_json(item))
                if not items and not dropped:
                    writer.write(ws.encode_frame(ws.OP_PING, b"keepalive"))
                    await writer.drain()

        async def receiver() -> None:
            parser = ws.FrameParser(require_mask=True)
            while True:
                data = await reader.read(4096)
                if not data:
                    return
                for frame in parser.feed(data):
                    if frame.opcode == ws.OP_PING:
                        writer.write(ws.encode_frame(ws.OP_PONG, frame.payload))
                        await writer.drain()
                    elif frame.opcode == ws.OP_CLOSE:
                        writer.write(ws.encode_close())
                        await writer.drain()
                        return
                    # text/pong frames are accepted and ignored

        sender_task = self._loop.create_task(sender())
        receiver_task = self._loop.create_task(receiver())
        try:
            done, pending = await asyncio.wait(
                {sender_task, receiver_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            bridge.close()
            for task in pending:
                task.cancel()
            for task in done | pending:
                try:
                    await task
                except (
                    asyncio.CancelledError,
                    ConnectionResetError,
                    BrokenPipeError,
                    ws.ProtocolError,
                ):
                    pass
        finally:
            bridge.close()
            if bridge in self._bridges:
                self._bridges.remove(bridge)
            if self._broker is not None:
                for subscription in subscriptions:
                    try:
                        self._broker.unsubscribe(subscription)
                    except Exception:
                        pass


class GatewayServer:
    """Run a :class:`Gateway` on a background thread with its own loop.

    The synchronous entry point tests, benchmarks and the example use:

        server = GatewayServer(engine, config).start()
        ... requests against 127.0.0.1:server.port ...
        server.stop()
    """

    def __init__(self, engine: Any, config: Optional[ServingConfig] = None):
        self.engine = engine
        self.config = config or ServingConfig()
        self.gateway: Optional[Gateway] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> "GatewayServer":
        self._thread = threading.Thread(
            target=self._run, name="gateway-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("gateway did not start in time")
        if self._startup_error is not None:
            raise RuntimeError("gateway failed to start") from self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup failures to start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self.gateway = Gateway(self.engine, self.config)
        try:
            await self.gateway.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.port = self.gateway.port
        self._ready.set()
        await self._shutdown.wait()
        await self.gateway.stop()

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._shutdown is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
