"""Minimal HTTP/1.1 plumbing for the asyncio gateway.

Covers exactly what the gateway needs — request-line + header parsing,
``Content-Length`` bodies, keep-alive, bounded sizes — on top of asyncio
streams.  No chunked encoding, no multipart: the wire API is JSON in,
JSON out.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import BadRequestError, PayloadTooLargeError

#: Upper bound on the request head (request line + headers) in bytes.
MAX_HEAD_BYTES = 16 * 1024
#: Upper bound on the number of header lines.
MAX_HEADERS = 64

REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    426: "Upgrade Required",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class Request:
    """One parsed HTTP request plus the per-request middleware context."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    client: str = "unknown"
    #: Scratch space the middleware stack threads through the request
    #: (request id, cache verdicts, matched route, path parameters).
    context: Dict[str, Any] = field(default_factory=dict)

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)

    def json(self) -> Any:
        """The body parsed as JSON, or a ``bad_request`` error."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}")

    @property
    def wants_upgrade(self) -> bool:
        connection = self.header("connection", "") or ""
        upgrade = self.header("upgrade", "") or ""
        return (
            "upgrade" in connection.lower() and upgrade.lower() == "websocket"
        )


@dataclass
class Response:
    """One HTTP response ready for :func:`write_response`."""

    status: int = 200
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @classmethod
    def json(cls, payload: Any, status: int = 200, **headers: str) -> "Response":
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        merged = {"Content-Type": "application/json"}
        merged.update(headers)
        return cls(status=status, headers=merged, body=body)


async def read_request(reader, max_body: int) -> Optional[Request]:
    """Read one request off the stream; ``None`` on a clean EOF.

    Raises :class:`BadRequestError` for malformed heads and
    :class:`PayloadTooLargeError` when the declared body exceeds
    ``max_body`` (the connection is closed either way).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise BadRequestError("truncated request head")
    except asyncio.LimitOverrunError:
        raise BadRequestError("request head too large")
    if len(head) > MAX_HEAD_BYTES:
        raise BadRequestError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    request_line = lines[0]
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequestError(f"malformed request line: {request_line!r}")
    method, target, _version = parts
    if len(lines) > MAX_HEADERS + 3:
        raise BadRequestError("too many headers")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequestError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }

    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError:
        raise BadRequestError(f"bad Content-Length: {length_header!r}")
    if length < 0:
        raise BadRequestError("negative Content-Length")
    if length > max_body:
        # drain what the client already committed to sending (bounded) so
        # it reads the 413 instead of dying on a reset mid-send
        remaining = min(length, 16 * 1024 * 1024)
        while remaining:
            chunk = await reader.read(min(65536, remaining))
            if not chunk:
                break
            remaining -= len(chunk)
        raise PayloadTooLargeError(
            f"request body of {length} bytes exceeds the {max_body} byte limit",
            detail={"limit": max_body, "length": length},
        )
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise BadRequestError("chunked request bodies are not supported")
    body = await reader.readexactly(length) if length else b""

    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_response(
    response: Response, *, keep_alive: bool = True, extra: Optional[Dict[str, str]] = None
) -> bytes:
    """Serialize a :class:`Response` to bytes (status line, headers, body)."""
    status = response.status
    reason = REASONS.get(status, "Unknown")
    headers = dict(response.headers)
    if extra:
        headers.update(extra)
    headers.setdefault("Content-Length", str(len(response.body)))
    headers.setdefault("Connection", "keep-alive" if keep_alive else "close")
    head = [f"HTTP/1.1 {status} {reason}"]
    head.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body


async def write_response(
    writer, response: Response, *, keep_alive: bool = True,
    extra: Optional[Dict[str, str]] = None,
) -> None:
    writer.write(render_response(response, keep_alive=keep_alive, extra=extra))
    await writer.drain()


def peer_name(writer) -> Tuple[str, str]:
    """``(host, "host:port")`` of the connection's peer."""
    peer = writer.get_extra_info("peername")
    if not peer:
        return "unknown", "unknown"
    host = str(peer[0])
    if len(peer) > 1:
        return host, f"{host}:{peer[1]}"
    return host, host
