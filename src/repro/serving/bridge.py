"""The broker → event-loop bridge behind WebSocket subscriptions.

Broker deliveries happen on whatever thread published (worker threads, the
executor, or the loop thread itself during retained replay); WebSocket
sends must happen on the event loop.  One :class:`SubscriptionBridge` per
connection crosses that boundary with a bounded, lossy queue:

* the broker-side handler appends under a plain lock and wakes the loop
  with ``call_soon_threadsafe`` — it never blocks, no matter how slow the
  consumer;
* when the deque is full the *oldest* message is dropped and counted, and
  the next batch the consumer drains is preceded by a lag marker
  ``{"type": "lag", "dropped": n}`` so the client knows its view of the
  stream has a hole (fresh data beats complete-but-stale data for an
  alerting front door).
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from typing import Any, Dict, List, Optional, Tuple


class SubscriptionBridge:
    """Thread-safe bounded funnel from broker callbacks into one coroutine."""

    def __init__(self, loop: asyncio.AbstractEventLoop, limit: int = 256):
        self.loop = loop
        self.limit = max(1, int(limit))
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._wakeup = asyncio.Event()
        self._closed = False
        #: Messages dropped since the consumer last drained.
        self._dropped_pending = 0
        #: Lifetime counters for the metrics route.
        self.delivered = 0
        self.dropped = 0

    # ---------------------------------------------------------------- #
    # producer side: called from any thread
    # ---------------------------------------------------------------- #

    def push(self, item: Any) -> None:
        """Enqueue one delivery; never blocks, drops oldest when full."""
        with self._lock:
            if self._closed:
                return
            if len(self._items) >= self.limit:
                self._items.popleft()
                self._dropped_pending += 1
                self.dropped += 1
            self._items.append(item)
        self._wake()

    def _wake(self) -> None:
        try:
            self.loop.call_soon_threadsafe(self._wakeup.set)
        except RuntimeError:
            # the loop is closing; the connection is going away anyway
            pass

    # ---------------------------------------------------------------- #
    # consumer side: the connection's sender coroutine
    # ---------------------------------------------------------------- #

    async def drain(self, timeout: Optional[float] = None) -> Tuple[int, List[Any]]:
        """Wait for deliveries; return ``(dropped_since_last, items)``.

        ``dropped_since_last`` > 0 means the consumer lagged and the queue
        shed that many messages since the previous drain — the sender
        emits a lag marker before the items.  A timeout returns
        ``(0, [])`` so the caller can interleave keepalive work.
        """
        if not self._items and not self._closed:
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout)
            except asyncio.TimeoutError:
                return 0, []
        with self._lock:
            items = list(self._items)
            self._items.clear()
            dropped = self._dropped_pending
            self._dropped_pending = 0
            self.delivered += len(items)
            self._wakeup.clear()
        return dropped, items

    def close(self) -> None:
        """Stop accepting deliveries and wake any waiting consumer."""
        with self._lock:
            self._closed = True
            self._items.clear()
        self._wake()

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "delivered": self.delivered,
                "dropped": self.dropped,
                "queued": len(self._items),
                "limit": self.limit,
            }


def lag_marker(dropped: int) -> Dict[str, int]:
    """The wire form of a backpressure gap announcement."""
    return {"type": "lag", "dropped": dropped}
