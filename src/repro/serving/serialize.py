"""JSON wire forms of the middleware's native objects.

One module owns every translation between engine types and the gateway's
JSON payloads, so the wire contract lives in one place and the test suite
can serialize direct library results through the *same* functions when
asserting bag-equality with served responses.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Iterable, List

from repro.cep.event import DerivedEvent, Event
from repro.errors import BadRequestError
from repro.semantics.rdf.term import BlankNode, IRI, Literal, Variable
from repro.semantics.sparql.bindings import Bindings
from repro.semantics.sparql.evaluator import QueryResult
from repro.semantics.sparql.views import ViewDelta
from repro.streams.messages import Message, ObservationRecord

# --------------------------------------------------------------------- #
# RDF terms and query results
# --------------------------------------------------------------------- #


def term_to_json(term: object) -> Dict[str, Any]:
    """One RDF term as a tagged JSON object."""
    if isinstance(term, IRI):
        return {"type": "iri", "value": term.value}
    if isinstance(term, Literal):
        payload: Dict[str, Any] = {
            "type": "literal",
            "value": _json_number(term.to_python()),
            "lexical": term.lexical,
        }
        if term.lang:
            payload["lang"] = term.lang
        elif term.datatype is not None:
            payload["datatype"] = term.datatype.value
        return payload
    if isinstance(term, BlankNode):
        return {"type": "bnode", "value": term.id}
    if isinstance(term, Variable):
        return {"type": "variable", "value": term.name}
    return {"type": "opaque", "value": str(term)}


def bindings_to_json(solution: Bindings) -> Dict[str, Any]:
    """One solution mapping as ``{variable name: term}``."""
    return {var.name: term_to_json(term) for var, term in solution.items()}


def query_result_to_json(result: QueryResult) -> Dict[str, Any]:
    """A SELECT / ASK result, including degraded-read markers."""
    payload: Dict[str, Any] = {
        "form": result.form,
        "variables": [variable.name for variable in result.variables],
        "rows": [bindings_to_json(solution) for solution in result.solutions],
    }
    if result.form == "ASK":
        payload["ask"] = result.ask
    if result.degraded:
        payload["degraded"] = True
        payload["missing_shards"] = list(result.missing_shards)
    return payload


# --------------------------------------------------------------------- #
# events, view deltas, broker messages
# --------------------------------------------------------------------- #


def event_to_json(event: Event) -> Dict[str, Any]:
    """A canonical or derived event; derived ones carry their provenance."""
    payload: Dict[str, Any] = {
        "event_type": event.event_type,
        "value": _json_number(event.value),
        "timestamp": event.timestamp,
        "source_id": event.source_id,
        "source_kind": event.source_kind,
        "area": event.area,
        "event_id": event.event_id,
    }
    if event.location is not None:
        payload["location"] = list(event.location)
    if event.annotation_iri is not None:
        payload["annotation_iri"] = event.annotation_iri
    if event.attributes:
        payload["attributes"] = json_safe(event.attributes)
    if isinstance(event, DerivedEvent):
        payload["kind"] = "derived"
        payload["rule"] = event.rule_name
        payload["provenance"] = event.provenance
    else:
        payload["kind"] = "canonical"
    return payload


def view_delta_to_json(delta: ViewDelta) -> Dict[str, Any]:
    """A standing view's itemised refresh delta."""
    return {
        "view": delta.view.name,
        "added": [bindings_to_json(row) for row in delta.added],
        "removed": [bindings_to_json(row) for row in delta.removed],
        "full_refresh": delta.full_refresh,
    }


def payload_to_json(payload: object) -> Dict[str, Any]:
    """Any broker payload in its closest wire form."""
    if isinstance(payload, Event):
        return event_to_json(payload)
    if isinstance(payload, ViewDelta):
        return view_delta_to_json(payload)
    if isinstance(payload, ObservationRecord):
        return payload.to_dict()
    return {"repr": repr(payload)}


def message_to_json(message: object) -> Dict[str, Any]:
    """One subscription delivery.

    Broker subscribers receive :class:`~repro.streams.messages.Message`
    envelopes; a broker-less :class:`OntologySegmentLayer` delivers bare
    derived events.  Both serialize to the same ``{"type": "message"}``
    shape so WebSocket clients need one decoder.
    """
    if isinstance(message, Message):
        return {
            "type": "message",
            "topic": message.topic,
            "timestamp": message.timestamp,
            "message_id": message.message_id,
            "headers": json_safe(message.headers),
            "payload": payload_to_json(message.payload),
        }
    if isinstance(message, Event):
        area = message.area or "unknown"
        return {
            "type": "message",
            "topic": f"derived/{message.event_type}/{area}",
            "timestamp": message.timestamp,
            "payload": event_to_json(message),
        }
    return {"type": "message", "payload": payload_to_json(message)}


# --------------------------------------------------------------------- #
# ingest decoding
# --------------------------------------------------------------------- #

_RECORD_REQUIRED = ("source_id", "source_kind", "property_name", "value", "timestamp")


def records_from_json(items: object) -> List[ObservationRecord]:
    """Decode the ingest route's ``records`` array, or raise ``bad_request``."""
    if not isinstance(items, list):
        raise BadRequestError("'records' must be an array of record objects")
    records = []
    for index, item in enumerate(items):
        if not isinstance(item, dict):
            raise BadRequestError(f"record {index} is not an object")
        missing = [key for key in _RECORD_REQUIRED if key not in item]
        if missing:
            raise BadRequestError(
                f"record {index} is missing {', '.join(missing)}",
                detail={"index": index, "missing": missing},
            )
        try:
            records.append(ObservationRecord.from_dict({"unit": None, **item}))
        except (TypeError, ValueError) as exc:
            raise BadRequestError(
                f"record {index} is malformed: {exc}", detail={"index": index}
            )
    return records


# --------------------------------------------------------------------- #
# generic sanitisation (the statistics route)
# --------------------------------------------------------------------- #


def _json_number(value: object) -> object:
    # JSON has no NaN / Infinity; the statistics and query payloads must
    # stay parseable by any client, not just Python's json module
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    return value


def json_safe(obj: object, _depth: int = 0) -> object:
    """Best-effort conversion of an arbitrary object tree to JSON types.

    The statistics snapshot mixes dataclasses, dicts, tuples and counters;
    this walks the tree, renders dataclasses as dicts and falls back to
    ``repr`` for anything exotic rather than failing the request.
    """
    if _depth > 8:
        return repr(obj)
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return _json_number(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: json_safe(getattr(obj, field.name), _depth + 1)
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(key): json_safe(value, _depth + 1) for key, value in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [json_safe(item, _depth + 1) for item in obj]
    return repr(obj)


def json_safe_iterable(items: Iterable[object]) -> List[object]:
    """``json_safe`` over an iterable, as a list."""
    return [json_safe(item) for item in items]
