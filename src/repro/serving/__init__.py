"""The asyncio serving front door.

A stdlib-only HTTP/1.1 + WebSocket gateway in front of the unified
embedding API (``ingest_batch`` / ``query`` / ``register_standing`` /
``subscribe`` / ``health`` / ``statistics``): wire clients POST record
batches and SPARQL queries, register standing views, and hold long-lived
WebSocket subscriptions fed straight from the broker — without the engine's
single-writer pipeline ever blocking the event loop.

See ``ARCHITECTURE.md`` ("Serving") for the route table, the middleware
stack order and the backpressure contract.
"""

from repro.serving.gateway import (
    STATUS_BY_CODE,
    Gateway,
    GatewayServer,
    ServingConfig,
)

__all__ = [
    "Gateway",
    "GatewayServer",
    "ServingConfig",
    "STATUS_BY_CODE",
]
