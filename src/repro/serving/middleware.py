"""The gateway's composable request middleware stack.

Every HTTP route runs through the same ordered stack
(request-context → metrics → rate-limit → cache → endpoint), mirroring the
registry-composed middleware chains of production serving stacks.  Each
middleware is an object with

    async def __call__(self, request, call_next) -> Response

where ``call_next`` invokes the rest of the stack.  :func:`build_stack`
folds a list of them over an endpoint into a single handler coroutine.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, defaultdict
from typing import Awaitable, Callable, Dict, Iterable, Optional, Tuple

from repro.errors import RateLimitedError, ReproError
from repro.serving.http import Request, Response

Handler = Callable[[Request], Awaitable[Response]]


def build_stack(middlewares: Iterable["object"], endpoint: Handler) -> Handler:
    """Fold the middleware list over ``endpoint``, outermost first."""
    handler = endpoint
    for middleware in reversed(list(middlewares)):
        handler = _wrap(middleware, handler)
    return handler


def _wrap(middleware, call_next: Handler) -> Handler:
    async def run(request: Request) -> Response:
        return await middleware(request, call_next)

    return run


class RequestContextMiddleware:
    """Outermost: request ids, timing, and the one exception-to-response map.

    Every response carries ``X-Request-Id``; every intentional
    :class:`~repro.errors.ReproError` becomes its table-mapped status with
    the error's ``to_payload()`` body; anything else becomes an opaque 500
    (the traceback stays server-side).
    """

    def __init__(self, status_by_code: Dict[str, int]):
        self.status_by_code = status_by_code
        self._ids = itertools.count(1)
        self.unhandled_errors = 0

    async def __call__(self, request: Request, call_next: Handler) -> Response:
        request_id = f"req-{next(self._ids)}"
        request.context["request_id"] = request_id
        request.context["started"] = time.monotonic()
        try:
            response = await call_next(request)
        except ReproError as exc:
            status = self.status_by_code.get(exc.code, 500)
            response = Response.json(exc.to_payload(), status=status)
            if isinstance(exc, RateLimitedError):
                response.headers["Retry-After"] = str(
                    max(1, int(exc.retry_after + 0.999))
                )
        except Exception:
            self.unhandled_errors += 1
            response = Response.json(
                {"error": "internal", "message": "internal server error"},
                status=500,
            )
        response.headers["X-Request-Id"] = request_id
        return response


class MetricsMiddleware:
    """Per-route request counts, status classes and latency accumulation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests: Dict[str, int] = defaultdict(int)
        self.statuses: Dict[int, int] = defaultdict(int)
        self.latency_sum: Dict[str, float] = defaultdict(float)
        self.latency_max: Dict[str, float] = defaultdict(float)

    async def __call__(self, request: Request, call_next: Handler) -> Response:
        started = time.monotonic()
        response = await call_next(request)
        elapsed = time.monotonic() - started
        route = request.context.get("route", f"{request.method} {request.path}")
        with self._lock:
            self.requests[route] += 1
            self.statuses[response.status] += 1
            self.latency_sum[route] += elapsed
            self.latency_max[route] = max(self.latency_max[route], elapsed)
        return response

    def snapshot(self) -> dict:
        with self._lock:
            routes = {}
            for route, count in sorted(self.requests.items()):
                routes[route] = {
                    "requests": count,
                    "mean_latency_ms": round(1000 * self.latency_sum[route] / count, 3),
                    "max_latency_ms": round(1000 * self.latency_max[route], 3),
                }
            return {
                "routes": routes,
                "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            }


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float):
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = time.monotonic()

    def take(self, now: Optional[float] = None) -> Tuple[bool, float]:
        """Try to take one token; ``(ok, seconds until one is available)``."""
        now = time.monotonic() if now is None else now
        self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self.tokens) / self.rate


class RateLimitMiddleware:
    """Per-client token-bucket rate limiting.

    The client key is the ``X-Client-Id`` header when present (one logical
    client may open many connections), else the peer address.  An
    exhausted bucket raises :class:`~repro.errors.RateLimitedError`, which
    the context middleware renders as 429 + ``Retry-After``.
    """

    def __init__(self, rate: float, burst: int, *, exempt: Iterable[str] = ()):
        self.rate = float(rate)
        self.burst = int(burst)
        #: Paths never limited (health checks, metrics scrapes).
        self.exempt = set(exempt)
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.limited = 0

    def client_key(self, request: Request) -> str:
        return request.header("x-client-id") or request.client

    def check(self, request: Request) -> None:
        """Take one token for this request or raise ``rate_limited``.

        Exposed separately so the WebSocket upgrade path (which bypasses
        the HTTP middleware stack) applies the same per-client budget.
        """
        if self.rate <= 0 or request.path in self.exempt:
            return
        key = self.client_key(request)
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._buckets[key] = TokenBucket(self.rate, self.burst)
            ok, retry_after = bucket.take()
            if not ok:
                self.limited += 1
        if not ok:
            raise RateLimitedError(
                f"client {key!r} exceeded {self.rate:g} requests/s",
                retry_after=retry_after,
            )

    async def __call__(self, request: Request, call_next: Handler) -> Response:
        self.check(request)
        return await call_next(request)


class CacheMiddleware:
    """Version-keyed response cache for the read-mostly routes.

    Only routes listed in ``cacheable`` participate.  The key is
    ``(method, path, body, engine version)`` where the engine version comes
    from a gateway-supplied callable — the gateway's mutation counter plus
    the graphs' version numbers — so any ingest or view registration
    invalidates every cached response at once, and out-of-band library
    writes are caught by the graph versions.  LRU-bounded; responses carry
    ``X-Cache: hit`` / ``miss``.
    """

    def __init__(
        self,
        version_token: Callable[[], object],
        *,
        cacheable: Iterable[Tuple[str, str]] = (),
        capacity: int = 256,
    ):
        self.version_token = version_token
        self.cacheable = set(cacheable)
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, Response]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    async def __call__(self, request: Request, call_next: Handler) -> Response:
        if (request.method, request.path) not in self.cacheable:
            return await call_next(request)
        key = (request.method, request.path, request.body, self.version_token())
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if cached is not None:
            response = Response(
                status=cached.status, headers=dict(cached.headers), body=cached.body
            )
            response.headers["X-Cache"] = "hit"
            return response
        response = await call_next(request)
        if response.status == 200:
            stored = Response(
                status=response.status,
                headers=dict(response.headers),
                body=response.body,
            )
            with self._lock:
                self.misses += 1
                self._entries[key] = stored
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
        response.headers["X-Cache"] = "miss"
        return response

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
            }
