"""A small synchronous client for the gateway.

Used by the test suite, the benchmark's warm-up path and the example.
HTTP rides on :mod:`http.client`; WebSocket rides on a raw socket and the
*same* sans-IO frame codec the server uses
(:mod:`repro.serving.websocket`), which is the point — one framing
implementation, exercised from both ends.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import quote

from repro.serving import websocket as ws


class HttpClient:
    """Blocking JSON-over-HTTP client with keep-alive."""

    def __init__(self, host: str, port: int, client_id: Optional[str] = None,
                 timeout: float = 30.0):
        self.host = host
        self.port = port
        self.client_id = client_id
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any, Dict[str, str]]:
        """``(status, parsed JSON body, response headers)``."""
        body = None
        merged = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            merged.setdefault("Content-Type", "application/json")
        if self.client_id is not None:
            merged.setdefault("X-Client-Id", self.client_id)
        self._conn.request(method, path, body=body, headers=merged)
        response = self._conn.getresponse()
        raw = response.read()
        parsed: Any = None
        if raw:
            try:
                parsed = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                parsed = raw
        return response.status, parsed, dict(response.getheaders())

    def get(self, path: str, **kwargs) -> Tuple[int, Any, Dict[str, str]]:
        return self.request("GET", path, **kwargs)

    def post(self, path: str, payload: dict, **kwargs) -> Tuple[int, Any, Dict[str, str]]:
        return self.request("POST", path, payload=payload, **kwargs)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "HttpClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class WebSocketClient:
    """Blocking WebSocket client speaking the server's own frame codec."""

    def __init__(
        self,
        host: str,
        port: int,
        path: str = "/v1/subscribe",
        topics: Optional[List[str]] = None,
        client_id: Optional[str] = None,
        timeout: float = 30.0,
    ):
        if topics:
            # '#' (the MQTT multi-level wildcard) would otherwise be read
            # as a URL fragment and silently dropped
            path = f"{path}?topics={quote(','.join(topics), safe='')}"
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._parser = ws.FrameParser(require_mask=False)
        self._pending: List[ws.Frame] = []
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        extra = f"X-Client-Id: {client_id}\r\n" if client_id else ""
        self._sock.sendall(
            (
                f"GET {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n"
                f"{extra}"
                "\r\n"
            ).encode("latin-1")
        )
        head, rest = self._read_head()
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1")
        parts = status_line.split(" ")
        self.status = int(parts[1]) if len(parts) > 1 and parts[1].isdigit() else 0
        if self.status != 101:
            # a rejected upgrade (e.g. 429) carries a JSON error body
            self.error: Optional[dict] = None
            try:
                if rest:
                    self.error = json.loads(rest.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                pass
            self._sock.close()
            return
        self.error = None
        if rest:
            self._pending.extend(self._parser.feed(rest))

    def _read_head(self) -> Tuple[bytes, bytes]:
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = self._sock.recv(4096)
            if not chunk:
                break
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        return head, rest

    def send_text(self, text: str) -> None:
        self._sock.sendall(ws.encode_text(text, mask=True))

    def ping(self, payload: bytes = b"") -> None:
        self._sock.sendall(ws.encode_frame(ws.OP_PING, payload, mask=True))

    def recv_frame(self, timeout: Optional[float] = None) -> Optional[ws.Frame]:
        """The next frame (any opcode), or ``None`` on timeout / EOF."""
        if self._pending:
            return self._pending.pop(0)
        if timeout is not None:
            self._sock.settimeout(timeout)
        while True:
            try:
                data = self._sock.recv(65536)
            except socket.timeout:
                return None
            if not data:
                return None
            frames = self._parser.feed(data)
            if frames:
                self._pending.extend(frames[1:])
                return frames[0]

    def recv_json(self, timeout: Optional[float] = None) -> Optional[dict]:
        """The next *data* message parsed as JSON (pings answered inline)."""
        deadline_frames = 1000
        for _ in range(deadline_frames):
            frame = self.recv_frame(timeout)
            if frame is None:
                return None
            if frame.opcode == ws.OP_PING:
                self._sock.sendall(
                    ws.encode_frame(ws.OP_PONG, frame.payload, mask=True)
                )
                continue
            if frame.opcode == ws.OP_CLOSE:
                return None
            if frame.opcode == ws.OP_TEXT:
                return json.loads(frame.text)
        return None

    def close(self) -> None:
        try:
            self._sock.sendall(ws.encode_close(mask=True))
            self._sock.settimeout(1.0)
            try:
                self._sock.recv(4096)
            except (socket.timeout, OSError):
                pass
        except OSError:
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "WebSocketClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
