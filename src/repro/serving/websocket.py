"""RFC 6455 WebSocket framing, sans-IO.

The frame codec is written against byte buffers rather than sockets or
asyncio streams, so the async gateway and the synchronous test client use
the *same* code: feed received bytes to a :class:`FrameParser`, get frames
out; build outgoing frames with :func:`encode_frame`.

Only what the gateway needs: text frames, ping/pong, close, server→client
unmasked / client→server masked, fragmented data frames reassembled.  No
extensions, no subprotocols.
"""

from __future__ import annotations

import base64
import hashlib
import os
import struct
from dataclasses import dataclass
from typing import List, Optional

#: The protocol-mandated handshake GUID (RFC 6455 §1.3).
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_CONTROL_OPS = (OP_CLOSE, OP_PING, OP_PONG)

#: Ceiling on a single (reassembled) message; a peer announcing more is
#: failed rather than buffered.
MAX_MESSAGE_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """The peer violated the framing rules; the connection must close."""


def accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's nonce."""
    digest = hashlib.sha1((client_key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_response(client_key: str) -> bytes:
    """The complete 101 Switching Protocols response head."""
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_key(client_key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def encode_frame(opcode: int, payload: bytes, *, mask: bool = False, fin: bool = True) -> bytes:
    """One frame; clients set ``mask=True`` as the RFC requires."""
    head = bytearray()
    head.append((0x80 if fin else 0) | opcode)
    mask_bit = 0x80 if mask else 0
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack("!H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", length)
    if mask:
        key = os.urandom(4)
        head += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + payload


def encode_text(text: str, *, mask: bool = False) -> bytes:
    return encode_frame(OP_TEXT, text.encode("utf-8"), mask=mask)


def encode_close(code: int = 1000, reason: str = "", *, mask: bool = False) -> bytes:
    payload = struct.pack("!H", code) + reason.encode("utf-8")
    return encode_frame(OP_CLOSE, payload, mask=mask)


@dataclass
class Frame:
    """One complete (reassembled, unmasked) incoming frame."""

    opcode: int
    payload: bytes

    @property
    def text(self) -> str:
        return self.payload.decode("utf-8")

    @property
    def close_code(self) -> Optional[int]:
        if self.opcode != OP_CLOSE or len(self.payload) < 2:
            return None
        return struct.unpack("!H", self.payload[:2])[0]


class FrameParser:
    """Incremental frame decoder: ``feed`` bytes in, complete frames out.

    Fragmented data frames are reassembled into one :class:`Frame` with
    the initial opcode; control frames interleaved mid-fragmentation are
    surfaced in arrival order, as the RFC permits.
    """

    def __init__(self, *, require_mask: bool = False):
        #: Servers set ``require_mask`` — an unmasked client frame is a
        #: protocol error; clients leave it off (server frames are bare).
        self.require_mask = require_mask
        self._buffer = bytearray()
        self._fragments: List[bytes] = []
        self._fragment_opcode: Optional[int] = None

    def feed(self, data: bytes) -> List[Frame]:
        """Consume received bytes, returning every frame they complete."""
        self._buffer += data
        frames: List[Frame] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[Frame]:
        buf = self._buffer
        if len(buf) < 2:
            return None
        first, second = buf[0], buf[1]
        fin = bool(first & 0x80)
        if first & 0x70:
            raise ProtocolError("reserved bits set without a negotiated extension")
        opcode = first & 0x0F
        masked = bool(second & 0x80)
        length = second & 0x7F
        offset = 2
        if length == 126:
            if len(buf) < offset + 2:
                return None
            (length,) = struct.unpack_from("!H", buf, offset)
            offset += 2
        elif length == 127:
            if len(buf) < offset + 8:
                return None
            (length,) = struct.unpack_from("!Q", buf, offset)
            offset += 8
        if length > MAX_MESSAGE_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds the message limit")
        if masked:
            if len(buf) < offset + 4:
                return None
            key = bytes(buf[offset : offset + 4])
            offset += 4
        elif self.require_mask:
            raise ProtocolError("client frames must be masked")
        else:
            key = None
        if len(buf) < offset + length:
            return None
        payload = bytes(buf[offset : offset + length])
        del self._buffer[: offset + length]
        if key is not None:
            payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))

        if opcode in _CONTROL_OPS:
            if not fin or length > 125:
                raise ProtocolError("control frames must be short and unfragmented")
            return Frame(opcode, payload)
        if opcode == OP_CONT:
            if self._fragment_opcode is None:
                raise ProtocolError("continuation frame without a started message")
            self._fragments.append(payload)
            if not fin:
                return self._next_frame()
            whole = b"".join(self._fragments)
            if len(whole) > MAX_MESSAGE_BYTES:
                raise ProtocolError("fragmented message exceeds the message limit")
            frame = Frame(self._fragment_opcode, whole)
            self._fragments = []
            self._fragment_opcode = None
            return frame
        # a data frame
        if self._fragment_opcode is not None:
            raise ProtocolError("new data frame while a fragmented message is open")
        if fin:
            return Frame(opcode, payload)
        self._fragment_opcode = opcode
        self._fragments = [payload]
        return self._next_frame()
