"""WSN topology and multi-hop delivery to the sink.

The motes of a district form a mesh; observations travel hop by hop towards
the sink (the gateway mote attached to the SMS uplink).  The topology is a
:mod:`networkx` graph whose edges are radio links within range; routing uses
shortest paths weighted by expected transmission count, and each hop runs
the :class:`~repro.sensors.radio.RadioModel`, so end-to-end delivery ratio,
latency and energy fall out of the simulation rather than being assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.sensors.node import SensorNode
from repro.sensors.radio import RadioModel, distance_metres
from repro.streams.messages import ObservationRecord, SenMLCodec


@dataclass
class DeliveryOutcome:
    """Result of pushing one batch of records from a mote to the sink."""

    source_id: str
    delivered: bool
    records: List[ObservationRecord]
    hops: int
    latency_seconds: float
    bytes_on_air: int
    energy_mj: float


@dataclass
class NetworkStatistics:
    """Aggregate WSN delivery statistics for the E8 benchmark."""

    batches_sent: int = 0
    batches_delivered: int = 0
    records_sent: int = 0
    records_delivered: int = 0
    total_bytes_on_air: int = 0
    total_latency: float = 0.0
    total_energy_mj: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        """Fraction of record batches that reached the sink."""
        if self.batches_sent == 0:
            return 0.0
        return self.batches_delivered / self.batches_sent

    @property
    def energy_per_delivered_record_mj(self) -> float:
        """Radio energy spent per record that reached the sink."""
        if self.records_delivered == 0:
            return float("inf")
        return self.total_energy_mj / self.records_delivered


class WirelessSensorNetwork:
    """A mesh of sensor nodes routing observation batches to a sink.

    Parameters
    ----------
    sink_id:
        Identifier of the sink node (created implicitly; it has no sensors).
    sink_location:
        Coordinates of the sink / gateway mote.
    radio:
        Shared radio model; per-link loss derives from inter-node distance.
    max_link_range_m:
        Links longer than this are not usable.
    """

    def __init__(
        self,
        sink_id: str = "sink",
        sink_location: Tuple[float, float] = (0.0, 0.0),
        radio: Optional[RadioModel] = None,
        max_link_range_m: float = 600.0,
    ):
        self.sink_id = sink_id
        self.sink_location = sink_location
        self.radio = radio or RadioModel()
        self.max_link_range_m = max_link_range_m
        self.nodes: Dict[str, SensorNode] = {}
        self.graph = nx.Graph()
        self.graph.add_node(sink_id, location=sink_location)
        self.statistics = NetworkStatistics()

    # ------------------------------------------------------------------ #
    # topology
    # ------------------------------------------------------------------ #

    def add_node(self, node: SensorNode) -> None:
        """Add a mote and connect it to every node within radio range."""
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id: {node.node_id}")
        self.nodes[node.node_id] = node
        self.graph.add_node(node.node_id, location=node.location)
        for other_id, attrs in self.graph.nodes(data=True):
            if other_id == node.node_id:
                continue
            distance = distance_metres(node.location, attrs["location"])
            if distance <= self.max_link_range_m:
                loss = self.radio.loss_probability(distance)
                # expected transmission count as the routing weight
                etx = 1.0 / max(1e-6, 1.0 - loss)
                self.graph.add_edge(
                    node.node_id, other_id, distance=distance, etx=etx
                )

    def route_to_sink(self, node_id: str) -> Optional[List[str]]:
        """Shortest ETX-weighted path from ``node_id`` to the sink."""
        alive = {self.sink_id} | {
            nid for nid, node in self.nodes.items() if node.alive
        }
        subgraph = self.graph.subgraph(alive)
        try:
            return nx.shortest_path(subgraph, node_id, self.sink_id, weight="etx")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            return None

    def connectivity(self) -> float:
        """Fraction of alive motes that currently have a route to the sink."""
        alive = [nid for nid, node in self.nodes.items() if node.alive]
        if not alive:
            return 0.0
        reachable = sum(1 for nid in alive if self.route_to_sink(nid) is not None)
        return reachable / len(alive)

    # ------------------------------------------------------------------ #
    # delivery
    # ------------------------------------------------------------------ #

    def deliver(self, node_id: str, records: List[ObservationRecord]) -> DeliveryOutcome:
        """Send a batch of records from ``node_id`` to the sink hop by hop."""
        if not records:
            return DeliveryOutcome(node_id, True, [], 0, 0.0, 0, 0.0)
        node = self.nodes[node_id]
        path = self.route_to_sink(node_id)
        self.statistics.batches_sent += 1
        self.statistics.records_sent += len(records)
        if path is None or not node.alive:
            return DeliveryOutcome(node_id, False, records, 0, 0.0, 0, 0.0)

        payload_bytes = SenMLCodec.encoded_size(records)
        total_latency = 0.0
        total_bytes = 0
        total_energy = 0.0
        delivered = True
        for hop_index in range(len(path) - 1):
            sender_id, receiver_id = path[hop_index], path[hop_index + 1]
            sender_loc = self.graph.nodes[sender_id]["location"]
            receiver_loc = self.graph.nodes[receiver_id]["location"]
            distance = distance_metres(sender_loc, receiver_loc)
            result = self.radio.transmit(payload_bytes, distance)
            total_latency += result.latency_seconds
            total_bytes += result.bytes_on_air
            sender = self.nodes.get(sender_id)
            if sender is not None:
                energy = result.bytes_on_air * sender.energy.transmit_cost_mj_per_byte
                sender.spend_transmission(result.bytes_on_air)
                total_energy += energy
            if not result.delivered:
                delivered = False
                break

        self.statistics.total_latency += total_latency
        self.statistics.total_bytes_on_air += total_bytes
        self.statistics.total_energy_mj += total_energy
        if delivered:
            self.statistics.batches_delivered += 1
            self.statistics.records_delivered += len(records)
        return DeliveryOutcome(
            source_id=node_id,
            delivered=delivered,
            records=records if delivered else [],
            hops=len(path) - 1 if path else 0,
            latency_seconds=total_latency,
            bytes_on_air=total_bytes,
            energy_mj=total_energy,
        )

    def sample_and_deliver(self, timestamp: float) -> List[DeliveryOutcome]:
        """Sample every alive mote and deliver its batch to the sink."""
        outcomes: List[DeliveryOutcome] = []
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            records = node.sample(timestamp)
            if records:
                outcomes.append(self.deliver(node_id, records))
        return outcomes

    @property
    def alive_count(self) -> int:
        """Number of motes still alive."""
        return sum(1 for node in self.nodes.values() if node.alive)

    def __repr__(self) -> str:
        return (
            f"<WirelessSensorNetwork nodes={len(self.nodes)} alive={self.alive_count} "
            f"delivery_ratio={self.statistics.delivery_ratio:.2f}>"
        )
