"""Wireless sensor network substrate.

The paper's implementation outlook (§5) gathers data with Libelium Waspmote
motes over 6LoWPAN / IEEE 802.15.4, conventional weather stations and
mobile-phone reports, uploaded through an SMS gateway to cloud storage.
This package simulates that whole physical layer:

``repro.sensors.modality``
    Sensor modalities (what can be measured, in which range, with what
    noise) and the environment-model protocol they sample from.
``repro.sensors.heterogeneity``
    Vendor naming profiles: how each source *spells* property names and
    which units / schemas it uses -- the heterogeneity the middleware must
    eliminate.
``repro.sensors.node``
    Waspmote-style motes: attached sensors, battery, duty cycle, drift.
``repro.sensors.radio``
    IEEE 802.15.4 radio and 6LoWPAN fragmentation model.
``repro.sensors.network``
    WSN topology and multi-hop routing to the sink (networkx).
``repro.sensors.gateway``
    SMS gateway uplink with batching and outage model.
``repro.sensors.weather_station``
    Conventional weather stations reporting a different schema.
``repro.sensors.mobile``
    Mobile-phone observer reports, including IK indicator sightings.
"""

from repro.sensors.modality import EnvironmentModel, Modality, MODALITIES, ConstantEnvironment
from repro.sensors.heterogeneity import NamingProfile, VENDOR_PROFILES
from repro.sensors.node import AttachedSensor, SensorNode
from repro.sensors.radio import RadioModel, SIXLOWPAN_MTU
from repro.sensors.network import WirelessSensorNetwork
from repro.sensors.gateway import SmsGateway
from repro.sensors.weather_station import WeatherStation
from repro.sensors.mobile import MobileObserver

__all__ = [
    "EnvironmentModel",
    "ConstantEnvironment",
    "Modality",
    "MODALITIES",
    "NamingProfile",
    "VENDOR_PROFILES",
    "AttachedSensor",
    "SensorNode",
    "RadioModel",
    "SIXLOWPAN_MTU",
    "WirelessSensorNetwork",
    "SmsGateway",
    "WeatherStation",
    "MobileObserver",
]
