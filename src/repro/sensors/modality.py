"""Sensor modalities and the environment-model protocol.

A :class:`Modality` describes one measurable environmental property: its
canonical key in the unified vocabulary, the canonical unit, a plausible
value range and the measurement noise of a typical sensing element.  Motes,
weather stations and human observers sample an :class:`EnvironmentModel`
(the ground-truth field provided by :mod:`repro.workloads.climate`) through
their modalities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Tuple


class EnvironmentModel(Protocol):
    """Ground-truth environmental field sampled by all sources.

    Implementations return the true value of a canonical property at a
    location and simulated time (seconds since the scenario epoch).
    """

    def true_value(
        self, property_key: str, location: Tuple[float, float], timestamp: float
    ) -> float:
        """The true value of ``property_key`` at ``location`` and ``timestamp``."""
        ...


class ConstantEnvironment:
    """A trivially simple environment returning fixed values per property.

    Used by unit tests that need deterministic sensor behaviour without the
    full climate generator.
    """

    def __init__(self, values: Optional[Dict[str, float]] = None, default: float = 0.0):
        self._values = dict(values or {})
        self._default = default

    def true_value(
        self, property_key: str, location: Tuple[float, float], timestamp: float
    ) -> float:
        """Return the configured constant for the property."""
        return self._values.get(property_key, self._default)


@dataclass(frozen=True)
class Modality:
    """One measurable property and the characteristics of sensing it.

    Attributes
    ----------
    property_key:
        Canonical property key in the unified vocabulary
        (see :data:`repro.ontologies.environment.CANONICAL_PROPERTIES`).
    canonical_unit:
        Unit symbol the forecasting layer expects.
    minimum / maximum:
        Physical clipping range for sensed values.
    noise_std:
        Standard deviation of zero-mean Gaussian measurement noise, in
        canonical units.
    drift_per_day:
        Calibration drift added per simulated day of operation.
    sampling_interval:
        Default sampling period in simulated seconds.
    """

    property_key: str
    canonical_unit: str
    minimum: float
    maximum: float
    noise_std: float
    drift_per_day: float = 0.0
    sampling_interval: float = 3600.0

    def clip(self, value: float) -> float:
        """Clamp a value into the physical range of the modality."""
        return max(self.minimum, min(self.maximum, value))


#: The modalities deployed in the Free State scenario.
MODALITIES: Dict[str, Modality] = {
    "air_temperature": Modality(
        "air_temperature", "degC", -15.0, 50.0, noise_std=0.3, drift_per_day=0.002
    ),
    "soil_moisture": Modality(
        "soil_moisture", "percent", 0.0, 60.0, noise_std=0.8, drift_per_day=0.01
    ),
    "soil_temperature": Modality(
        "soil_temperature", "degC", -5.0, 45.0, noise_std=0.4
    ),
    "rainfall": Modality(
        "rainfall", "mm", 0.0, 400.0, noise_std=0.2
    ),
    "relative_humidity": Modality(
        "relative_humidity", "percent", 0.0, 100.0, noise_std=1.5
    ),
    "wind_speed": Modality(
        "wind_speed", "m/s", 0.0, 40.0, noise_std=0.5
    ),
    "solar_radiation": Modality(
        "solar_radiation", "W/m2", 0.0, 1200.0, noise_std=15.0
    ),
    "barometric_pressure": Modality(
        "barometric_pressure", "hPa", 850.0, 1080.0, noise_std=0.5
    ),
    "water_level": Modality(
        "water_level", "mm", 0.0, 15000.0, noise_std=20.0
    ),
    "vegetation_index": Modality(
        "vegetation_index", "index", 0.0, 1.0, noise_std=0.02,
        sampling_interval=86400.0,
    ),
}


def get_modality(property_key: str) -> Modality:
    """Look up a modality by canonical property key.

    Raises ``KeyError`` for unknown keys.
    """
    return MODALITIES[property_key]
