"""Vendor naming profiles: the source of data heterogeneity.

Each heterogeneous source family spells property names differently (its own
language, vendor field names or standard tags), reports in its own units and
uses its own record schema.  A :class:`NamingProfile` captures those choices
for one vendor / community; the simulated motes and stations are assigned
profiles so that the raw streams arriving at the middleware exhibit exactly
the naming and cognitive heterogeneity the paper describes (``"Hoehe"`` vs
``"Stav"`` vs ``"water level"``), and the mediation experiments can measure
how much of it the ontology layer resolves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class NamingProfile:
    """How one source family names properties and reports values.

    Attributes
    ----------
    name:
        Profile identifier, e.g. ``"libelium_en"`` or ``"dwd_german"``.
    property_names:
        ``canonical_key -> source spelling`` map.
    units:
        ``canonical_key -> unit symbol the source reports in``.  Missing
        keys fall back to the canonical unit.
    metadata_style:
        Free-form schema tag recorded in the observation metadata so the
        mediator can also resolve schema heterogeneity.
    """

    name: str
    property_names: Dict[str, str]
    units: Dict[str, str] = field(default_factory=dict)
    metadata_style: str = "flat"

    def spell(self, canonical_key: str) -> str:
        """The source's spelling of a canonical property key."""
        return self.property_names.get(canonical_key, canonical_key)

    def unit_for(self, canonical_key: str, canonical_unit: str) -> str:
        """The unit symbol the source reports the property in."""
        return self.units.get(canonical_key, canonical_unit)


#: Profiles used by the Free State scenario.  They intentionally mix
#: English, German, Czech, Spanish and vendor-specific abbreviations, and
#: non-canonical units, following the paper's naming-heterogeneity examples.
VENDOR_PROFILES: Dict[str, NamingProfile] = {
    "libelium_en": NamingProfile(
        name="libelium_en",
        property_names={
            "air_temperature": "TC",
            "soil_moisture": "SOIL_MOIST",
            "soil_temperature": "SOIL_TEMP",
            "rainfall": "PLUVIO",
            "relative_humidity": "HUM",
            "wind_speed": "ANE",
            "solar_radiation": "RAD",
            "barometric_pressure": "PRES",
            "water_level": "WaterLevel",
            "vegetation_index": "NDVI",
        },
        units={"barometric_pressure": "kPa"},
        metadata_style="waspmote_frame",
    ),
    "german_gauge": NamingProfile(
        name="german_gauge",
        property_names={
            "water_level": "Hoehe",
            "air_temperature": "Lufttemperatur",
            "rainfall": "Niederschlag",
            "relative_humidity": "Luftfeuchtigkeit",
            "soil_moisture": "Bodenfeuchte",
            "soil_temperature": "Bodentemperatur",
            "wind_speed": "Windgeschwindigkeit",
            "barometric_pressure": "Luftdruck",
            "solar_radiation": "Globalstrahlung",
            "vegetation_index": "Vegetationsindex",
        },
        units={"water_level": "cm", "rainfall": "mm"},
        metadata_style="wiski_export",
    ),
    "czech_gauge": NamingProfile(
        name="czech_gauge",
        property_names={
            "water_level": "Stav",
            "air_temperature": "Teplota",
            "rainfall": "Srazky",
            "relative_humidity": "Vlhkost",
            "soil_moisture": "Vlhkost pudy",
            "soil_temperature": "Teplota pudy",
            "wind_speed": "Rychlost vetru",
        },
        units={"water_level": "m"},
        metadata_style="chmi_export",
    ),
    "saws_station": NamingProfile(
        name="saws_station",
        property_names={
            "air_temperature": "Dry Bulb Temperature",
            "rainfall": "PRCP",
            "relative_humidity": "Rel Humidity",
            "wind_speed": "FF",
            "wind_direction": "DD",
            "barometric_pressure": "Station Pressure",
            "solar_radiation": "Global Radiation",
        },
        units={"rainfall": "in", "air_temperature": "degF", "wind_speed": "knot"},
        metadata_style="synop",
    ),
    "farmer_mobile": NamingProfile(
        name="farmer_mobile",
        property_names={
            "rainfall": "rain today",
            "air_temperature": "temp",
            "soil_moisture": "soil water",
            "vegetation_index": "greenness",
        },
        units={},
        metadata_style="sms_text",
    ),
    "legacy_spanish": NamingProfile(
        name="legacy_spanish",
        property_names={
            "air_temperature": "Temperatura",
            "rainfall": "Precipitacion",
            "relative_humidity": "Humedad",
            "soil_moisture": "Humedad del suelo",
            "water_level": "Nivel de agua",
        },
        units={"water_level": "ft"},
        metadata_style="csv_v1",
    ),
}


def profile_cycle(seed: int = 0) -> List[NamingProfile]:
    """A deterministic shuffled list of profiles for round-robin assignment."""
    rng = random.Random(seed)
    profiles = list(VENDOR_PROFILES.values())
    rng.shuffle(profiles)
    return profiles


def assign_profiles(count: int, seed: int = 0) -> List[NamingProfile]:
    """Assign ``count`` sources a profile each, cycling deterministically."""
    cycle = profile_cycle(seed)
    return [cycle[i % len(cycle)] for i in range(count)]


@dataclass
class HeterogeneityReport:
    """Summary of the raw-stream heterogeneity in a batch of observations.

    Built by :func:`measure_heterogeneity`; the mediation benchmark compares
    the number of distinct source spellings per canonical property before
    and after mediation.
    """

    total_records: int
    distinct_terms: int
    distinct_units: int
    terms_per_property: Dict[str, int]

    @property
    def naming_heterogeneity(self) -> float:
        """Average number of distinct spellings per canonical property."""
        if not self.terms_per_property:
            return 0.0
        return sum(self.terms_per_property.values()) / len(self.terms_per_property)


def measure_heterogeneity(records, aligner=None) -> HeterogeneityReport:
    """Measure naming / unit heterogeneity in raw observation records.

    ``aligner`` (a :class:`repro.ontologies.alignment.TermAligner`) is used
    to group spellings under their canonical property; without one the raw
    spelling itself is used as the group key (i.e. no grouping).
    """
    terms: Dict[str, set] = {}
    units: set = set()
    spellings: set = set()
    total = 0
    for record in records:
        total += 1
        spellings.add(record.property_name)
        if record.unit:
            units.add(record.unit)
        if aligner is not None:
            result = aligner.align(record.property_name)
            key = result.canonical_key or record.property_name
        else:
            key = record.property_name
        terms.setdefault(key, set()).add(record.property_name)
    return HeterogeneityReport(
        total_records=total,
        distinct_terms=len(spellings),
        distinct_units=len(units),
        terms_per_property={key: len(values) for key, values in terms.items()},
    )
