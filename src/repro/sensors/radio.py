"""IEEE 802.15.4 radio and 6LoWPAN fragmentation model.

The Waspmote motes in the paper transmit compressed IPv6 packets over
IEEE 802.15.4.  The radio model here captures the pieces that matter for
the experiments: the 127-byte frame limit (hence 6LoWPAN fragmentation of
larger observation batches), a distance-dependent packet-loss probability,
per-hop latency and per-byte energy cost.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

#: Maximum IEEE 802.15.4 frame size in bytes.
IEEE_802_15_4_FRAME = 127
#: Bytes of each frame available to the 6LoWPAN payload after MAC and
#: compressed IPv6/UDP headers.
SIXLOWPAN_MTU = 96
#: Bytes of overhead added per fragment (fragmentation header).
FRAGMENT_HEADER = 5


@dataclass
class TransmissionResult:
    """Outcome of sending one payload over one link."""

    delivered: bool
    fragments_sent: int
    fragments_lost: int
    bytes_on_air: int
    latency_seconds: float
    retries: int


class RadioModel:
    """A lossy single-hop radio link model.

    Parameters
    ----------
    reference_loss:
        Packet (fragment) loss probability at the reference distance.
    reference_distance_m:
        Distance at which ``reference_loss`` applies.
    max_range_m:
        Beyond this distance delivery always fails.
    data_rate_bps:
        Radio bit rate (802.15.4 is 250 kbit/s).
    max_retries:
        Link-layer retransmissions per fragment.
    seed:
        RNG seed for reproducible loss behaviour.
    """

    def __init__(
        self,
        reference_loss: float = 0.02,
        reference_distance_m: float = 100.0,
        max_range_m: float = 800.0,
        data_rate_bps: float = 250_000.0,
        max_retries: int = 3,
        seed: int = 0,
    ):
        if not 0.0 <= reference_loss < 1.0:
            raise ValueError("reference_loss must be in [0, 1)")
        self.reference_loss = reference_loss
        self.reference_distance_m = reference_distance_m
        self.max_range_m = max_range_m
        self.data_rate_bps = data_rate_bps
        self.max_retries = max_retries
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    # link characteristics
    # ------------------------------------------------------------------ #

    def loss_probability(self, distance_m: float) -> float:
        """Fragment loss probability for a link of ``distance_m`` metres.

        Loss grows quadratically with distance (a simple path-loss proxy)
        and saturates at 1.0 beyond the maximum range.
        """
        if distance_m >= self.max_range_m:
            return 1.0
        scaled = (distance_m / self.reference_distance_m) ** 2
        return min(1.0, self.reference_loss * scaled)

    def fragment_count(self, payload_bytes: int) -> int:
        """Number of 6LoWPAN fragments needed for ``payload_bytes``."""
        if payload_bytes <= 0:
            return 0
        if payload_bytes <= SIXLOWPAN_MTU:
            return 1
        effective = SIXLOWPAN_MTU - FRAGMENT_HEADER
        return math.ceil(payload_bytes / effective)

    def airtime(self, frame_bytes: int) -> float:
        """Transmission time of one frame in seconds."""
        return (frame_bytes * 8) / self.data_rate_bps

    # ------------------------------------------------------------------ #
    # transmission
    # ------------------------------------------------------------------ #

    def transmit(self, payload_bytes: int, distance_m: float) -> TransmissionResult:
        """Send a payload over one hop, fragmenting and retrying as needed.

        Delivery of the payload requires every fragment to be delivered
        (6LoWPAN reassembly discards incomplete datagrams).
        """
        fragments = self.fragment_count(payload_bytes)
        if fragments == 0:
            return TransmissionResult(True, 0, 0, 0, 0.0, 0)
        loss = self.loss_probability(distance_m)
        frame_bytes = min(IEEE_802_15_4_FRAME, payload_bytes + FRAGMENT_HEADER)
        latency = 0.0
        bytes_on_air = 0
        lost_fragments = 0
        retries_used = 0
        delivered = True
        for _ in range(fragments):
            fragment_delivered = False
            for attempt in range(self.max_retries + 1):
                bytes_on_air += frame_bytes
                latency += self.airtime(frame_bytes) + 0.003  # CSMA/turnaround overhead
                if self._rng.random() >= loss:
                    fragment_delivered = True
                    if attempt > 0:
                        retries_used += attempt
                    break
            if not fragment_delivered:
                lost_fragments += 1
                retries_used += self.max_retries
                delivered = False
        return TransmissionResult(
            delivered=delivered,
            fragments_sent=fragments,
            fragments_lost=lost_fragments,
            bytes_on_air=bytes_on_air,
            latency_seconds=latency,
            retries=retries_used,
        )


def distance_metres(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Approximate ground distance between two (lat, lon) points in metres.

    Uses an equirectangular approximation, adequate for the tens-of-
    kilometres extents of a district-scale WSN.
    """
    lat1, lon1 = a
    lat2, lon2 = b
    mean_lat = math.radians((lat1 + lat2) / 2.0)
    dx = math.radians(lon2 - lon1) * math.cos(mean_lat)
    dy = math.radians(lat2 - lat1)
    earth_radius = 6_371_000.0
    return earth_radius * math.hypot(dx, dy)
