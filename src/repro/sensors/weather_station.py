"""Conventional weather stations.

Weather stations are the second heterogeneous source class in the paper's
IoT-based monitoring system.  Compared to the WSN motes they are sparse,
reliable, report on a slower cadence (synoptic hours or daily summaries) and
use their own schema and units (the SAWS-style profile reports temperature
in Fahrenheit and rainfall in inches to exercise unit mediation).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.ontologies.units import convert
from repro.sensors.heterogeneity import NamingProfile, VENDOR_PROFILES
from repro.sensors.modality import EnvironmentModel, get_modality
from repro.streams.messages import ObservationRecord

#: Properties a synoptic station reports, in reporting order.
STATION_PROPERTIES = [
    "air_temperature",
    "rainfall",
    "relative_humidity",
    "wind_speed",
    "barometric_pressure",
    "solar_radiation",
]


class WeatherStation:
    """A conventional synoptic weather station.

    Parameters
    ----------
    station_id:
        Identifier such as ``"saws-bloemfontein"``.
    location:
        Station coordinates.
    environment:
        Ground-truth environment model.
    profile:
        Naming profile; defaults to the SAWS-style synoptic profile.
    reporting_interval:
        Seconds between reports (default: 6-hourly synoptic reports).
    availability:
        Probability that a scheduled report is actually produced
        (instrument and comms downtime).
    """

    def __init__(
        self,
        station_id: str,
        location: Tuple[float, float],
        environment: EnvironmentModel,
        profile: Optional[NamingProfile] = None,
        reporting_interval: float = 6 * 3600.0,
        availability: float = 0.97,
        seed: int = 0,
    ):
        self.station_id = station_id
        self.location = location
        self.environment = environment
        self.profile = profile or VENDOR_PROFILES["saws_station"]
        self.reporting_interval = reporting_interval
        self.availability = availability
        self._rng = random.Random(seed)
        self.reports_produced = 0
        self.reports_missed = 0

    def report(self, timestamp: float) -> List[ObservationRecord]:
        """Produce one synoptic report (possibly empty if unavailable)."""
        if self._rng.random() > self.availability:
            self.reports_missed += 1
            return []
        records: List[ObservationRecord] = []
        for key in STATION_PROPERTIES:
            if key not in self.profile.property_names:
                continue
            modality = get_modality(key)
            true_value = self.environment.true_value(key, self.location, timestamp)
            # Station instruments are better calibrated than mote elements.
            value = modality.clip(true_value + self._rng.gauss(0.0, modality.noise_std * 0.3))
            report_unit = self.profile.unit_for(key, modality.canonical_unit)
            if report_unit != modality.canonical_unit:
                value = convert(value, modality.canonical_unit, report_unit)
            records.append(
                ObservationRecord(
                    source_id=self.station_id,
                    source_kind="weather_station",
                    property_name=self.profile.spell(key),
                    value=round(value, 3),
                    unit=report_unit,
                    timestamp=timestamp,
                    location=self.location,
                    metadata={
                        "profile": self.profile.name,
                        "schema": self.profile.metadata_style,
                    },
                )
            )
        self.reports_produced += 1
        return records

    def __repr__(self) -> str:
        return f"<WeatherStation {self.station_id} profile={self.profile.name}>"
