"""Mobile-phone observers.

The third heterogeneous source class: farmers and extension officers with
mobile phones, reporting (a) rough quantitative observations ("rain today",
"temp") in colloquial terms and (b) sightings of indigenous-knowledge
indicators.  IK sightings are produced as observation records of kind
``"ik_sighting"`` whose property name is the indicator key and whose value
is the sighting intensity in ``[0, 1]``; the IK layer turns these into
semantic ``IndicatorSighting`` individuals.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.sensors.heterogeneity import NamingProfile, VENDOR_PROFILES
from repro.sensors.modality import EnvironmentModel, get_modality
from repro.streams.messages import ObservationRecord

#: Signature of the indicator-activity oracle: returns the probability in
#: [0, 1] that a given indicator is currently showing, given the location
#: and time.  Supplied by the scenario / IK layer.
IndicatorActivity = Callable[[str, Tuple[float, float], float], float]


class MobileObserver:
    """A community member reporting observations and IK sightings by phone.

    Parameters
    ----------
    observer_id:
        Identifier, e.g. ``"farmer-012"``.
    location:
        The observer's home area.
    environment:
        Ground-truth environment model (for the quantitative reports).
    indicator_activity:
        Oracle giving the probability that an indicator is observable; when
        omitted, no IK sightings are produced.
    indicators:
        The indicator keys this observer knows how to recognise.
    report_probability:
        Probability that the observer actually sends a report on any given
        reporting opportunity (people forget, networks fail).
    quantisation:
        Rounding step for quantitative reports -- phone reports are coarse
        ("about 10 mm"), which is part of cognitive heterogeneity.
    """

    def __init__(
        self,
        observer_id: str,
        location: Tuple[float, float],
        environment: EnvironmentModel,
        indicator_activity: Optional[IndicatorActivity] = None,
        indicators: Optional[List[str]] = None,
        profile: Optional[NamingProfile] = None,
        report_probability: float = 0.6,
        quantisation: float = 1.0,
        seed: int = 0,
    ):
        self.observer_id = observer_id
        self.location = location
        self.environment = environment
        self.indicator_activity = indicator_activity
        self.indicators = list(indicators or [])
        self.profile = profile or VENDOR_PROFILES["farmer_mobile"]
        self.report_probability = report_probability
        self.quantisation = quantisation
        self._rng = random.Random(seed)
        self.reports_sent = 0
        self.sightings_sent = 0

    # ------------------------------------------------------------------ #
    # quantitative reports
    # ------------------------------------------------------------------ #

    def report_conditions(self, timestamp: float) -> List[ObservationRecord]:
        """Produce coarse quantitative reports for the observer's area."""
        if self._rng.random() > self.report_probability:
            return []
        records: List[ObservationRecord] = []
        for key in ("rainfall", "air_temperature"):
            modality = get_modality(key)
            true_value = self.environment.true_value(key, self.location, timestamp)
            noisy = true_value + self._rng.gauss(0.0, modality.noise_std * 3.0)
            coarse = round(noisy / self.quantisation) * self.quantisation
            records.append(
                ObservationRecord(
                    source_id=self.observer_id,
                    source_kind="mobile_report",
                    property_name=self.profile.spell(key),
                    value=modality.clip(coarse),
                    unit=modality.canonical_unit,
                    timestamp=timestamp,
                    location=self.location,
                    metadata={"profile": self.profile.name, "schema": "sms_text"},
                )
            )
        self.reports_sent += 1
        return records

    # ------------------------------------------------------------------ #
    # indigenous indicator sightings
    # ------------------------------------------------------------------ #

    def report_sightings(self, timestamp: float) -> List[ObservationRecord]:
        """Report any indigenous indicators the observer noticed."""
        if self.indicator_activity is None or not self.indicators:
            return []
        records: List[ObservationRecord] = []
        for indicator_key in self.indicators:
            activity = self.indicator_activity(indicator_key, self.location, timestamp)
            if self._rng.random() >= activity:
                continue
            intensity = min(1.0, max(0.0, activity + self._rng.gauss(0.0, 0.1)))
            records.append(
                ObservationRecord(
                    source_id=self.observer_id,
                    source_kind="ik_sighting",
                    property_name=indicator_key,
                    value=round(intensity, 3),
                    unit=None,
                    timestamp=timestamp,
                    location=self.location,
                    metadata={
                        "observer": self.observer_id,
                        "schema": "ik_sighting",
                    },
                )
            )
            self.sightings_sent += 1
        return records

    def __repr__(self) -> str:
        return (
            f"<MobileObserver {self.observer_id} indicators={len(self.indicators)} "
            f"reports={self.reports_sent} sightings={self.sightings_sent}>"
        )
