"""SMS gateway uplink.

In the paper's deployment the motes' readings are "uploaded via SMS gateway
for storage in the cloud".  The gateway model batches the records that
arrive at the WSN sink, encodes them as SenML documents, and uploads them to
the cloud store with a configurable latency and outage model (cellular
coverage in rural Free State is intermittent).  Records that arrive during
an outage are queued and flushed when coverage returns, so outages add
latency rather than silently losing data -- unless the queue overflows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.streams.messages import ObservationRecord, SenMLCodec
from repro.streams.scheduler import SimulationScheduler

UploadCallback = Callable[[str, float], None]


@dataclass
class GatewayStatistics:
    """Counters for the dissemination / WSN benchmarks."""

    records_received: int = 0
    records_uploaded: int = 0
    records_dropped: int = 0
    uploads: int = 0
    failed_upload_attempts: int = 0
    total_upload_latency: float = 0.0

    @property
    def upload_success_ratio(self) -> float:
        """Fraction of received records eventually uploaded."""
        if self.records_received == 0:
            return 0.0
        return self.records_uploaded / self.records_received


class SmsGateway:
    """Batches sink records and uploads them to the cloud store.

    Parameters
    ----------
    scheduler:
        Simulation scheduler driving upload timing.
    upload:
        Callback ``(senml_document, timestamp)`` invoked for each successful
        upload -- normally :meth:`repro.dews.cloud.CloudStore.ingest`.
    batch_size:
        Records per upload batch.
    upload_interval:
        Seconds between scheduled upload attempts.
    upload_latency:
        Simulated seconds an upload takes when coverage is available.
    outage_probability:
        Probability that any given upload attempt finds no cellular
        coverage; the batch stays queued for the next attempt.
    queue_capacity:
        Maximum records held while waiting for coverage; overflow drops the
        oldest records.
    """

    def __init__(
        self,
        scheduler: SimulationScheduler,
        upload: UploadCallback,
        batch_size: int = 50,
        upload_interval: float = 900.0,
        upload_latency: float = 8.0,
        outage_probability: float = 0.05,
        queue_capacity: int = 5000,
        seed: int = 0,
    ):
        self.scheduler = scheduler
        self.upload = upload
        self.batch_size = batch_size
        self.upload_interval = upload_interval
        self.upload_latency = upload_latency
        self.outage_probability = outage_probability
        self.queue_capacity = queue_capacity
        self.statistics = GatewayStatistics()
        self._queue: List[ObservationRecord] = []
        self._rng = random.Random(seed)
        self._timer = scheduler.schedule_repeating(upload_interval, self._attempt_upload)

    # ------------------------------------------------------------------ #
    # ingest from the WSN sink / weather stations / mobile reports
    # ------------------------------------------------------------------ #

    def receive(self, records: List[ObservationRecord]) -> None:
        """Queue records that arrived at the sink for upload."""
        self.statistics.records_received += len(records)
        self._queue.extend(records)
        overflow = len(self._queue) - self.queue_capacity
        if overflow > 0:
            del self._queue[:overflow]
            self.statistics.records_dropped += overflow

    @property
    def queued(self) -> int:
        """Number of records waiting for upload."""
        return len(self._queue)

    # ------------------------------------------------------------------ #
    # upload
    # ------------------------------------------------------------------ #

    def _attempt_upload(self) -> None:
        if not self._queue:
            return
        if self._rng.random() < self.outage_probability:
            self.statistics.failed_upload_attempts += 1
            return
        while self._queue:
            batch = self._queue[: self.batch_size]
            del self._queue[: len(batch)]
            document = SenMLCodec.encode(batch)
            upload_time = self.scheduler.clock.now + self.upload_latency
            self.scheduler.schedule(
                self.upload_latency,
                lambda doc=document, t=upload_time, n=len(batch): self._complete_upload(doc, t, n),
            )

    def _complete_upload(self, document: str, timestamp: float, record_count: int) -> None:
        self.upload(document, timestamp)
        self.statistics.uploads += 1
        self.statistics.records_uploaded += record_count
        self.statistics.total_upload_latency += self.upload_latency

    def flush(self) -> None:
        """Force an immediate upload attempt (used by tests)."""
        self._attempt_upload()

    def stop(self) -> None:
        """Cancel the periodic upload timer."""
        self._timer.cancel()

    def __repr__(self) -> str:
        return (
            f"<SmsGateway queued={self.queued} uploads={self.statistics.uploads} "
            f"success={self.statistics.upload_success_ratio:.2f}>"
        )
