"""Waspmote-style sensor nodes.

A :class:`SensorNode` hosts several :class:`AttachedSensor` elements (one
per modality), samples the ground-truth environment on a duty cycle, applies
measurement noise, calibration drift and the node's vendor naming profile,
and spends battery energy for sampling and transmission.  Dead or sleeping
nodes produce nothing, which is one source of the missing data the
forecasting experiments must tolerate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ontologies.units import convert
from repro.sensors.heterogeneity import NamingProfile, VENDOR_PROFILES
from repro.sensors.modality import EnvironmentModel, Modality, get_modality
from repro.streams.messages import ObservationRecord
from repro.streams.scheduler import DAY


@dataclass
class AttachedSensor:
    """One sensing element attached to a node."""

    modality: Modality
    #: Multiplicative calibration error (1.0 = perfect).
    gain_error: float = 1.0
    #: Additive offset error in canonical units.
    offset_error: float = 0.0
    #: Accumulated drift (canonical units), grows with node age.
    accumulated_drift: float = 0.0

    def measure(
        self,
        environment: EnvironmentModel,
        location: Tuple[float, float],
        timestamp: float,
        rng: random.Random,
    ) -> float:
        """Produce a noisy, drifted reading in canonical units."""
        true_value = environment.true_value(self.modality.property_key, location, timestamp)
        noise = rng.gauss(0.0, self.modality.noise_std)
        raw = true_value * self.gain_error + self.offset_error + self.accumulated_drift + noise
        return self.modality.clip(raw)

    def age(self, days: float) -> None:
        """Accumulate calibration drift over ``days`` of operation."""
        self.accumulated_drift += self.modality.drift_per_day * days


@dataclass
class EnergyModel:
    """Per-operation energy costs in millijoules and the battery budget.

    The defaults model a Waspmote-class node with a 6600 mAh battery and a
    small solar panel (as Libelium field deployments use), giving multi-year
    lifetimes under a daily duty cycle; the WSN energy benchmark (E8) sweeps
    these parameters downwards to study battery-constrained deployments.
    """

    battery_mj: float = 400_000.0
    sample_cost_mj: float = 5.0
    idle_cost_mj_per_day: float = 20.0
    transmit_cost_mj_per_byte: float = 0.015
    receive_cost_mj_per_byte: float = 0.008


class SensorNode:
    """A battery-powered multi-sensor mote.

    Parameters
    ----------
    node_id:
        Unique identifier, e.g. ``"mote-07"``.
    location:
        ``(latitude, longitude)`` of the deployment site.
    modalities:
        Canonical property keys of the attached sensing elements.
    profile:
        Vendor naming profile controlling how readings are spelled and in
        which units they are reported.  Defaults to the Libelium profile.
    environment:
        The ground-truth environment model to sample.
    sampling_interval:
        Seconds between sampling rounds (duty cycle).
    seed:
        Per-node RNG seed for reproducible noise and failure behaviour.
    failure_rate_per_day:
        Probability per simulated day that the node fails permanently
        (hardware fault, theft, livestock damage).
    """

    def __init__(
        self,
        node_id: str,
        location: Tuple[float, float],
        modalities: List[str],
        environment: EnvironmentModel,
        profile: Optional[NamingProfile] = None,
        sampling_interval: float = 3600.0,
        seed: int = 0,
        failure_rate_per_day: float = 0.0,
        energy_model: Optional[EnergyModel] = None,
    ):
        self.node_id = node_id
        self.location = location
        self.environment = environment
        self.profile = profile or VENDOR_PROFILES["libelium_en"]
        self.sampling_interval = sampling_interval
        self.failure_rate_per_day = failure_rate_per_day
        self.energy = energy_model or EnergyModel()
        self._rng = random.Random(seed)
        self.sensors: Dict[str, AttachedSensor] = {}
        for key in modalities:
            modality = get_modality(key)
            self.sensors[key] = AttachedSensor(
                modality=modality,
                gain_error=1.0 + self._rng.gauss(0.0, 0.01),
                offset_error=self._rng.gauss(0.0, modality.noise_std * 0.5),
            )
        self.remaining_energy_mj = self.energy.battery_mj
        self.alive = True
        self.samples_taken = 0
        self.records_produced = 0
        self._last_sample_time: Optional[float] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def _spend(self, millijoules: float) -> bool:
        if not self.alive:
            return False
        self.remaining_energy_mj -= millijoules
        if self.remaining_energy_mj <= 0:
            self.remaining_energy_mj = 0.0
            self.alive = False
        return self.alive

    def spend_transmission(self, payload_bytes: int) -> bool:
        """Account the energy for transmitting ``payload_bytes``.

        Returns whether the node is still alive afterwards.
        """
        return self._spend(payload_bytes * self.energy.transmit_cost_mj_per_byte)

    def advance_time(self, timestamp: float) -> None:
        """Apply ageing, idle drain and random failure up to ``timestamp``."""
        if self._last_sample_time is None:
            self._last_sample_time = timestamp
            return
        elapsed_days = max(0.0, (timestamp - self._last_sample_time) / DAY)
        if elapsed_days <= 0:
            return
        for sensor in self.sensors.values():
            sensor.age(elapsed_days)
        self._spend(elapsed_days * self.energy.idle_cost_mj_per_day)
        if self.failure_rate_per_day > 0 and self.alive:
            failure_probability = 1.0 - (1.0 - self.failure_rate_per_day) ** elapsed_days
            if self._rng.random() < failure_probability:
                self.alive = False
        self._last_sample_time = timestamp

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #

    def sample(self, timestamp: float) -> List[ObservationRecord]:
        """Sample every attached sensor, producing raw heterogeneous records.

        Values are converted from canonical units into the profile's
        reporting unit and labelled with the profile's spelling, so the
        records exhibit the raw heterogeneity of the source.
        """
        self.advance_time(timestamp)
        if not self.alive:
            return []
        records: List[ObservationRecord] = []
        for key, sensor in self.sensors.items():
            if not self._spend(self.energy.sample_cost_mj):
                break
            canonical_value = sensor.measure(self.environment, self.location, timestamp, self._rng)
            report_unit = self.profile.unit_for(key, sensor.modality.canonical_unit)
            if report_unit != sensor.modality.canonical_unit:
                reported_value = convert(
                    canonical_value, sensor.modality.canonical_unit, report_unit
                )
            else:
                reported_value = canonical_value
            records.append(
                ObservationRecord(
                    source_id=self.node_id,
                    source_kind="wsn_mote",
                    property_name=self.profile.spell(key),
                    value=round(reported_value, 4),
                    unit=report_unit,
                    timestamp=timestamp,
                    location=self.location,
                    metadata={
                        "profile": self.profile.name,
                        "schema": self.profile.metadata_style,
                        "battery_mj": round(self.remaining_energy_mj, 1),
                    },
                )
            )
            self.samples_taken += 1
        self.records_produced += len(records)
        return records

    @property
    def battery_fraction(self) -> float:
        """Remaining battery energy as a fraction of the initial budget."""
        return self.remaining_energy_mj / self.energy.battery_mj

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return (
            f"<SensorNode {self.node_id} {state} battery={self.battery_fraction:.0%} "
            f"sensors={list(self.sensors)}>"
        )
