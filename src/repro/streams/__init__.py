"""Data streams and message-oriented middleware substrate.

The paper classifies its contribution as *message oriented middleware*: the
semantic layer sits on top of an asynchronous messaging fabric that carries
heterogeneous observation streams from the physical layer to the ontology
segment layer and onwards to the CEP engine and output channels.

``repro.streams.scheduler``
    A deterministic discrete-event simulation clock shared by the WSN
    simulator, the broker and the DEWS pipeline.
``repro.streams.broker``
    Topic-based publish/subscribe message broker with delivery accounting.
``repro.streams.messages``
    The message envelope and SenML-like observation payload codecs.
``repro.streams.window``
    Tumbling / sliding / count windows over timestamped items.
``repro.streams.operators``
    Functional stream operators (map, filter, aggregate, join) used to build
    processing pipelines.
"""

from repro.streams.broker import Broker, Subscription, SubscriptionTrie, topic_matches
from repro.streams.messages import Message, ObservationRecord, SenMLCodec
from repro.streams.operators import StreamPipeline
from repro.streams.scheduler import SimulationClock, SimulationScheduler
from repro.streams.window import CountWindow, SlidingWindow, TumblingWindow

__all__ = [
    "SimulationClock",
    "SimulationScheduler",
    "Broker",
    "Subscription",
    "SubscriptionTrie",
    "topic_matches",
    "Message",
    "ObservationRecord",
    "SenMLCodec",
    "TumblingWindow",
    "SlidingWindow",
    "CountWindow",
    "StreamPipeline",
]
