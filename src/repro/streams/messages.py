"""Message envelopes and observation payload codecs.

The physical layer produces *raw observation records* whose field names,
units and schema differ per source (that is the heterogeneity the paper
wants to eliminate).  Records travel inside :class:`Message` envelopes over
the broker; the codecs serialise them to a SenML-like JSON wire format for
the simulated SMS gateway / cloud store and back.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, asdict
from typing import Any, Dict, List, Optional


@dataclass
class ObservationRecord:
    """A raw observation as emitted by a heterogeneous source.

    Attributes
    ----------
    source_id:
        Identifier of the producing source (mote id, station id, phone id).
    source_kind:
        One of ``"wsn_mote"``, ``"weather_station"``, ``"mobile_report"``,
        ``"ik_sighting"`` -- the heterogeneous source classes of the paper.
    property_name:
        The property name *as the source spells it* (e.g. ``"Hoehe"``).
    value:
        The numeric reading, in the source's unit.
    unit:
        The source's unit symbol (e.g. ``"degF"``); may be ``None`` for
        categorical reports such as indicator sightings.
    timestamp:
        Simulated seconds since the scenario epoch.
    location:
        ``(latitude, longitude)`` of the source.
    feature_of_interest:
        Optional identifier of the observed feature (field, river reach).
    metadata:
        Source-specific extra fields (battery level, observer name, ...).
    """

    source_id: str
    source_kind: str
    property_name: str
    value: float
    unit: Optional[str]
    timestamp: float
    location: Optional[tuple] = None
    feature_of_interest: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form used by the codecs and the cloud store."""
        data = asdict(self)
        if self.location is not None:
            data["location"] = list(self.location)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ObservationRecord":
        """Rebuild a record from its dict form."""
        payload = dict(data)
        location = payload.get("location")
        if location is not None:
            payload["location"] = tuple(location)
        return cls(**payload)


@dataclass
class Message:
    """An envelope carried by the broker.

    ``topic`` routes the message; ``payload`` is either an
    :class:`ObservationRecord`, a semantic annotation result or any other
    application object; ``headers`` carry middleware metadata such as the
    producing layer and the annotation provenance.
    """

    topic: str
    payload: Any
    timestamp: float
    message_id: int = field(default_factory=lambda: next(Message._ids))
    headers: Dict[str, Any] = field(default_factory=dict)

    _ids = itertools.count(1)

    def with_header(self, key: str, value: Any) -> "Message":
        """A copy of the message with one extra header."""
        headers = dict(self.headers)
        headers[key] = value
        return Message(
            topic=self.topic,
            payload=self.payload,
            timestamp=self.timestamp,
            message_id=self.message_id,
            headers=headers,
        )


class SenMLCodec:
    """Encode / decode observation records to a SenML-inspired JSON format.

    The encoding mirrors the structure of the OGC / IETF sensor formats the
    paper cites (SensorML, O&M, SenML): a base record naming the source plus
    a list of entries with name / value / unit / time.  The simulated SMS
    gateway compresses batches of records into one JSON document per upload.
    """

    @staticmethod
    def encode(records: List[ObservationRecord]) -> str:
        """Encode a batch of records into a JSON document."""
        if not records:
            return json.dumps({"bn": "", "e": []})
        base = records[0].source_id
        entries = []
        for record in records:
            entry: Dict[str, Any] = {
                "n": record.property_name,
                "v": record.value,
                "t": record.timestamp,
                "src": record.source_id,
                "kind": record.source_kind,
            }
            if record.unit is not None:
                entry["u"] = record.unit
            if record.location is not None:
                entry["lat"], entry["lon"] = record.location
            if record.feature_of_interest is not None:
                entry["foi"] = record.feature_of_interest
            if record.metadata:
                entry["meta"] = record.metadata
            entries.append(entry)
        return json.dumps({"bn": base, "e": entries}, sort_keys=True)

    @staticmethod
    def decode(document: str) -> List[ObservationRecord]:
        """Decode a JSON document back into observation records."""
        data = json.loads(document)
        records: List[ObservationRecord] = []
        for entry in data.get("e", []):
            location = None
            if "lat" in entry and "lon" in entry:
                location = (entry["lat"], entry["lon"])
            records.append(
                ObservationRecord(
                    source_id=entry.get("src", data.get("bn", "")),
                    source_kind=entry.get("kind", "unknown"),
                    property_name=entry["n"],
                    value=entry["v"],
                    unit=entry.get("u"),
                    timestamp=entry["t"],
                    location=location,
                    feature_of_interest=entry.get("foi"),
                    metadata=entry.get("meta", {}),
                )
            )
        return records

    @staticmethod
    def encoded_size(records: List[ObservationRecord]) -> int:
        """Size in bytes of the encoded batch (used by the radio model)."""
        return len(SenMLCodec.encode(records).encode("utf-8"))
