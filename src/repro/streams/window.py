"""Windows over timestamped items.

The CEP engine and the stream operators evaluate their conditions over
bounded windows of the (conceptually unbounded) observation streams:
tumbling windows for periodic aggregation (daily rainfall totals), sliding
windows for trend and threshold patterns (soil-moisture decline over the
last 30 days), and count windows for "last N readings" logic.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Generic, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")

TimestampFunction = Callable[[Any], float]


def _default_timestamp(item: Any) -> float:
    timestamp = getattr(item, "timestamp", None)
    if timestamp is None:
        raise TypeError(
            "window items must expose a 'timestamp' attribute or a timestamp "
            "function must be supplied"
        )
    return float(timestamp)


@dataclass
class WindowSnapshot(Generic[T]):
    """The content of a window when it closed or was inspected."""

    start: float
    end: float
    items: List[T]

    def __len__(self) -> int:
        return len(self.items)

    def values(self, extractor: Callable[[T], float]) -> List[float]:
        """Apply ``extractor`` to every item (convenience for aggregates)."""
        return [extractor(item) for item in self.items]


class SlidingWindow(Generic[T]):
    """A time-based sliding window keeping items newer than ``duration``.

    ``add`` returns the evicted items so callers can react to expiry.
    """

    def __init__(self, duration: float, timestamp_fn: Optional[TimestampFunction] = None):
        if duration <= 0:
            raise ValueError("window duration must be positive")
        self.duration = duration
        self._timestamp = timestamp_fn or _default_timestamp
        self._items: Deque[Tuple[float, T]] = deque()

    def add(self, item: T) -> List[T]:
        """Insert an item and evict everything older than the window."""
        timestamp = self._timestamp(item)
        self._items.append((timestamp, item))
        return self._evict(timestamp)

    def advance_to(self, timestamp: float) -> List[T]:
        """Evict items that have fallen out of the window at ``timestamp``."""
        return self._evict(timestamp)

    def _evict(self, now: float) -> List[T]:
        expired: List[T] = []
        cutoff = now - self.duration
        while self._items and self._items[0][0] < cutoff:
            expired.append(self._items.popleft()[1])
        return expired

    @property
    def items(self) -> List[T]:
        """Items currently inside the window (oldest first)."""
        return [item for _, item in self._items]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self.items)

    def snapshot(self) -> WindowSnapshot[T]:
        """The current window content with its time bounds."""
        if not self._items:
            return WindowSnapshot(0.0, 0.0, [])
        return WindowSnapshot(self._items[0][0], self._items[-1][0], self.items)

    def clear(self) -> None:
        """Drop all items."""
        self._items.clear()


class TumblingWindow(Generic[T]):
    """Fixed, non-overlapping windows of ``duration`` simulated seconds.

    ``add`` returns the completed :class:`WindowSnapshot` whenever an item's
    timestamp falls past the current window boundary (possibly skipping
    empty windows).
    """

    def __init__(
        self,
        duration: float,
        start: float = 0.0,
        timestamp_fn: Optional[TimestampFunction] = None,
    ):
        if duration <= 0:
            raise ValueError("window duration must be positive")
        self.duration = duration
        self._window_start = start
        self._timestamp = timestamp_fn or _default_timestamp
        self._items: List[T] = []

    @property
    def window_start(self) -> float:
        """Start time of the currently accumulating window."""
        return self._window_start

    def add(self, item: T) -> List[WindowSnapshot[T]]:
        """Insert an item; returns any windows closed by its timestamp."""
        timestamp = self._timestamp(item)
        closed = self.advance_to(timestamp)
        self._items.append(item)
        return closed

    def advance_to(self, timestamp: float) -> List[WindowSnapshot[T]]:
        """Close every window that ends at or before ``timestamp``."""
        closed: List[WindowSnapshot[T]] = []
        while timestamp >= self._window_start + self.duration:
            closed.append(
                WindowSnapshot(
                    self._window_start,
                    self._window_start + self.duration,
                    list(self._items),
                )
            )
            self._items = []
            self._window_start += self.duration
        return closed

    def flush(self) -> WindowSnapshot[T]:
        """Close the currently accumulating window regardless of time."""
        snapshot = WindowSnapshot(
            self._window_start, self._window_start + self.duration, list(self._items)
        )
        self._items = []
        self._window_start += self.duration
        return snapshot

    def __len__(self) -> int:
        return len(self._items)


class ViewDeltaWindow(Generic[T]):
    """The live row multiset of a standing query, fed by view deltas.

    Where the time/count windows buffer an event *stream*, this window
    mirrors a *result set*: it applies the itemised added / removed rows
    of each :class:`~repro.semantics.sparql.views.ViewDelta` pushed over
    the broker, so its content always equals the standing view's current
    rows without the subscriber ever re-running the query.  Rows are kept
    as a multiset (a federated view can legitimately hold duplicate
    projected rows), and any payload exposing ``added`` / ``removed``
    sequences of hashable items works — the window never imports the
    semantics layer.
    """

    def __init__(self) -> None:
        self._rows: Counter = Counter()
        #: Number of deltas applied (observability).
        self.deltas_applied = 0

    def apply(self, delta: Any) -> None:
        """Fold one view delta's added / removed rows into the multiset."""
        self.deltas_applied += 1
        for row in delta.added:
            self._rows[row] += 1
        for row in delta.removed:
            count = self._rows[row] - 1
            if count > 0:
                self._rows[row] = count
            else:
                del self._rows[row]

    @property
    def items(self) -> List[T]:
        """The current rows, with multiplicity."""
        return list(self._rows.elements())

    def values(self, extractor: Callable[[T], float]) -> List[float]:
        """Apply ``extractor`` to every row (convenience for aggregates)."""
        return [extractor(row) for row in self._rows.elements()]

    def __len__(self) -> int:
        return sum(self._rows.values())

    def __iter__(self) -> Iterator[T]:
        return iter(self._rows.elements())

    def clear(self) -> None:
        """Drop all rows."""
        self._rows.clear()


class CountWindow(Generic[T]):
    """A window keeping the last ``size`` items."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size
        self._items: Deque[T] = deque(maxlen=size)

    def add(self, item: T) -> None:
        """Insert an item, evicting the oldest when full."""
        self._items.append(item)

    @property
    def items(self) -> List[T]:
        """Items currently in the window (oldest first)."""
        return list(self._items)

    @property
    def full(self) -> bool:
        """Whether the window holds ``size`` items."""
        return len(self._items) == self.size

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def clear(self) -> None:
        """Drop all items."""
        self._items.clear()
