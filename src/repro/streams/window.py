"""Windows over timestamped items.

The CEP engine and the stream operators evaluate their conditions over
bounded windows of the (conceptually unbounded) observation streams:
tumbling windows for periodic aggregation (daily rainfall totals), sliding
windows for trend and threshold patterns (soil-moisture decline over the
last 30 days), and count windows for "last N readings" logic.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

T = TypeVar("T")

TimestampFunction = Callable[[Any], float]


def _default_timestamp(item: Any) -> float:
    timestamp = getattr(item, "timestamp", None)
    if timestamp is None:
        raise TypeError(
            "window items must expose a 'timestamp' attribute or a timestamp "
            "function must be supplied"
        )
    return float(timestamp)


@dataclass
class WindowSnapshot(Generic[T]):
    """The content of a window when it closed or was inspected."""

    start: float
    end: float
    items: List[T]

    def __len__(self) -> int:
        return len(self.items)

    def values(self, extractor: Callable[[T], float]) -> List[float]:
        """Apply ``extractor`` to every item (convenience for aggregates)."""
        return [extractor(item) for item in self.items]


class SlidingWindow(Generic[T]):
    """A time-based sliding window keeping items newer than ``duration``.

    ``add`` returns the evicted items so callers can react to expiry.
    Items are kept sorted by timestamp even when they arrive out of order
    (sensor uploads routinely interleave), and eviction runs against the
    *newest* timestamp seen so far — so a late-arriving expired item is
    evicted immediately instead of being stranded behind a newer deque
    head and inflating aggregates forever.
    """

    def __init__(self, duration: float, timestamp_fn: Optional[TimestampFunction] = None):
        if duration <= 0:
            raise ValueError("window duration must be positive")
        self.duration = duration
        self._timestamp = timestamp_fn or _default_timestamp
        self._items: Deque[Tuple[float, T]] = deque()
        self._high_water = float("-inf")

    def add(self, item: T) -> List[T]:
        """Insert an item (in timestamp order) and evict expired ones."""
        timestamp = self._timestamp(item)
        if self._items and timestamp < self._items[-1][0]:
            # out-of-order arrival: put it back in timestamp order so the
            # oldest-first eviction scan stays correct
            displaced: List[Tuple[float, T]] = []
            while self._items and self._items[-1][0] > timestamp:
                displaced.append(self._items.pop())
            self._items.append((timestamp, item))
            while displaced:
                self._items.append(displaced.pop())
        else:
            self._items.append((timestamp, item))
        if timestamp > self._high_water:
            self._high_water = timestamp
        return self._evict(self._high_water)

    def advance_to(self, timestamp: float) -> List[T]:
        """Evict items that have fallen out of the window at ``timestamp``.

        Time never runs backwards: a ``timestamp`` older than the newest
        item seen does not shrink the eviction horizon.
        """
        if timestamp > self._high_water:
            self._high_water = timestamp
        return self._evict(self._high_water)

    def _evict(self, now: float) -> List[T]:
        expired: List[T] = []
        cutoff = now - self.duration
        while self._items and self._items[0][0] < cutoff:
            expired.append(self._items.popleft()[1])
        return expired

    @property
    def items(self) -> List[T]:
        """Items currently inside the window (oldest first)."""
        return [item for _, item in self._items]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self.items)

    def snapshot(self) -> WindowSnapshot[T]:
        """The current window content with its time bounds."""
        if not self._items:
            return WindowSnapshot(0.0, 0.0, [])
        return WindowSnapshot(self._items[0][0], self._items[-1][0], self.items)

    def clear(self) -> None:
        """Drop all items."""
        self._items.clear()
        self._high_water = float("-inf")


class TumblingWindow(Generic[T]):
    """Fixed, non-overlapping windows of ``duration`` simulated seconds.

    ``add`` returns the completed non-empty :class:`WindowSnapshot` whenever
    an item's timestamp falls past the current window boundary.  Runs of
    *empty* windows are skipped arithmetically and emit nothing: one
    malformed far-future timestamp must not spin the loop once per empty
    window (a single ``year-3000`` sensor reading used to cost millions of
    iterations), and the paper's aggregation consumers only ever act on
    windows that held data.
    """

    def __init__(
        self,
        duration: float,
        start: float = 0.0,
        timestamp_fn: Optional[TimestampFunction] = None,
    ):
        if duration <= 0:
            raise ValueError("window duration must be positive")
        self.duration = duration
        self._window_start = start
        self._timestamp = timestamp_fn or _default_timestamp
        self._items: List[T] = []

    @property
    def window_start(self) -> float:
        """Start time of the currently accumulating window."""
        return self._window_start

    def add(self, item: T) -> List[WindowSnapshot[T]]:
        """Insert an item; returns any windows closed by its timestamp."""
        timestamp = self._timestamp(item)
        closed = self.advance_to(timestamp)
        self._items.append(item)
        return closed

    def advance_to(self, timestamp: float) -> List[WindowSnapshot[T]]:
        """Close windows ending at or before ``timestamp``.

        Returns the closed window's snapshot when it held items; the
        (possibly enormous) run of empty windows up to ``timestamp`` is
        skipped in O(1) arithmetic rather than one loop iteration each.
        """
        closed: List[WindowSnapshot[T]] = []
        if timestamp < self._window_start + self.duration:
            return closed
        if self._items:
            closed.append(
                WindowSnapshot(
                    self._window_start,
                    self._window_start + self.duration,
                    list(self._items),
                )
            )
            self._items = []
        steps = int((timestamp - self._window_start) // self.duration)
        if steps < 1:
            steps = 1
        self._window_start += steps * self.duration
        # float-rounding clamps: restore start <= timestamp < start + duration
        while timestamp >= self._window_start + self.duration:
            self._window_start += self.duration
        while self._window_start > timestamp:
            self._window_start -= self.duration
        return closed

    def flush(self) -> WindowSnapshot[T]:
        """Close the currently accumulating window regardless of time."""
        snapshot = WindowSnapshot(
            self._window_start, self._window_start + self.duration, list(self._items)
        )
        self._items = []
        self._window_start += self.duration
        return snapshot

    def __len__(self) -> int:
        return len(self._items)


class ViewDeltaWindow(Generic[T]):
    """The live row multiset of a standing query, fed by view deltas.

    Where the time/count windows buffer an event *stream*, this window
    mirrors a *result set*: it applies the itemised added / removed rows
    of each :class:`~repro.semantics.sparql.views.ViewDelta` pushed over
    the broker, so its content always equals the standing view's current
    rows without the subscriber ever re-running the query.  Rows are kept
    as a multiset (a federated view can legitimately hold duplicate
    projected rows), and any payload exposing ``added`` / ``removed``
    sequences of hashable items works — the window never imports the
    semantics layer.
    """

    def __init__(self) -> None:
        self._rows: Counter = Counter()
        #: Number of deltas applied (observability).
        self.deltas_applied = 0
        #: Removals of rows this window never saw (observability): non-zero
        #: usually means the window attached mid-stream without seeding.
        self.unseen_removals = 0

    def seed(self, rows: Iterable[T]) -> None:
        """Initialise the multiset from a view's *current* rows.

        A window attached after the view is already populated would
        otherwise start empty — undercounting until the next full refresh
        and observing removals of rows it never saw.
        """
        self._rows = Counter(rows)

    def apply(self, delta: Any) -> None:
        """Fold one view delta's added / removed rows into the multiset.

        A removal of a row the window never saw (attached mid-stream, no
        seed) is tolerated: it is counted in :attr:`unseen_removals` and
        otherwise ignored — a multiset has no negative multiplicities.
        """
        self.deltas_applied += 1
        for row in delta.added:
            self._rows[row] += 1
        for row in delta.removed:
            count = self._rows.get(row, 0)
            if count > 1:
                self._rows[row] = count - 1
            elif count == 1:
                del self._rows[row]
            else:
                self.unseen_removals += 1

    @property
    def items(self) -> List[T]:
        """The current rows, with multiplicity."""
        return list(self._rows.elements())

    def values(self, extractor: Callable[[T], float]) -> List[float]:
        """Apply ``extractor`` to every row (convenience for aggregates)."""
        return [extractor(row) for row in self._rows.elements()]

    def __len__(self) -> int:
        return sum(self._rows.values())

    def __iter__(self) -> Iterator[T]:
        return iter(self._rows.elements())

    def clear(self) -> None:
        """Drop all rows."""
        self._rows.clear()


class CountWindow(Generic[T]):
    """A window keeping the last ``size`` items."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size
        self._items: Deque[T] = deque(maxlen=size)

    def add(self, item: T) -> None:
        """Insert an item, evicting the oldest when full."""
        self._items.append(item)

    @property
    def items(self) -> List[T]:
        """Items currently in the window (oldest first)."""
        return list(self._items)

    @property
    def full(self) -> bool:
        """Whether the window holds ``size`` items."""
        return len(self._items) == self.size

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def clear(self) -> None:
        """Drop all items."""
        self._items.clear()
