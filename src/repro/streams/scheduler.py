"""Discrete-event simulation clock and scheduler.

Everything in the reproduction that "happens over time" -- mote sampling,
radio transmission, gateway uploads, CEP window expiry, forecast issuance,
dissemination -- is driven by one deterministic scheduler so experiments are
reproducible and fast (simulated days run in milliseconds of wall time).

Time is measured in simulated seconds since the scenario epoch.  Helper
constants convert to hours/days so the climate workloads can speak in days
while the radio model speaks in milliseconds.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

#: Seconds per simulated minute / hour / day.
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0

EventCallback = Callable[[], None]


class SimulationClock:
    """A monotonically advancing simulated time source."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to ``timestamp`` (never backwards)."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move clock backwards: {timestamp} < {self._now}"
            )
        self._now = timestamp

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self._now += delta

    def __repr__(self) -> str:
        return f"SimulationClock(t={self._now:.3f}s)"


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`SimulationScheduler.schedule` for cancelling."""

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already ran)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        """The simulated time the event is scheduled for."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether the event has been cancelled."""
        return self._event.cancelled


class SimulationScheduler:
    """Priority-queue based discrete-event scheduler.

    Events scheduled for the same instant run in insertion order, which
    keeps runs deterministic.
    """

    def __init__(self, clock: Optional[SimulationClock] = None):
        self.clock = clock or SimulationClock()
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._processed = 0

    @property
    def pending(self) -> int:
        """Number of events waiting to run (including cancelled ones)."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: EventCallback) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self.clock.now + delay, callback)

    def schedule_at(self, timestamp: float, callback: EventCallback) -> EventHandle:
        """Run ``callback`` at the absolute simulated ``timestamp``."""
        if timestamp < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {timestamp} < {self.clock.now}"
            )
        event = _ScheduledEvent(timestamp, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_repeating(
        self,
        interval: float,
        callback: EventCallback,
        start_delay: float = 0.0,
        count: Optional[int] = None,
    ) -> EventHandle:
        """Run ``callback`` every ``interval`` seconds.

        ``count`` bounds the number of invocations; ``None`` means until the
        scheduler stops being run.  Returns the handle of the *first*
        occurrence; cancelling it stops the whole series.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        state = {"remaining": count}
        handle_box: List[EventHandle] = []

        def fire() -> None:
            # cancelling the returned (first) handle stops the whole series,
            # even after it has already fired
            if handle_box and handle_box[0].cancelled:
                return
            callback()
            if state["remaining"] is not None:
                state["remaining"] -= 1
                if state["remaining"] <= 0:
                    return
            self.schedule(interval, fire)

        first = self.schedule(start_delay if start_delay > 0 else interval, fire)
        handle_box.append(first)
        return first

    def run_until(self, end_time: float) -> int:
        """Execute events up to and including ``end_time``.

        Returns the number of events executed.  The clock finishes at
        ``end_time`` even if the queue empties earlier.
        """
        executed = 0
        while self._queue and self._queue[0].time <= end_time:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            executed += 1
            self._processed += 1
        self.clock.advance_to(max(self.clock.now, end_time))
        return executed

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Execute every pending event (bounded by ``max_events``)."""
        executed = 0
        while self._queue and executed < max_events:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            executed += 1
            self._processed += 1
        return executed

    def __repr__(self) -> str:
        return (
            f"<SimulationScheduler t={self.clock.now:.1f}s "
            f"pending={self.pending} processed={self._processed}>"
        )
