"""Topic-based publish/subscribe message broker.

This is the message-oriented-middleware backbone: the physical layer
publishes raw observation messages, the ontology segment layer subscribes,
annotates and republishes semantic messages, and the CEP engine and the
dissemination channels subscribe downstream.  Topics use ``/``-separated
segments with MQTT-style wildcards (``+`` for one segment, ``#`` for the
rest), which is how the application abstraction layer exposes selective
subscriptions to applications.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.streams.messages import Message
from repro.streams.scheduler import SimulationScheduler

MessageHandler = Callable[[Message], None]


def topic_matches(pattern: str, topic: str) -> bool:
    """MQTT-style topic matching.

    ``+`` matches exactly one segment, ``#`` (which must be last) matches
    any remaining segments including none.
    """
    pattern_parts = pattern.split("/")
    topic_parts = topic.split("/")
    for index, part in enumerate(pattern_parts):
        if part == "#":
            if index != len(pattern_parts) - 1:
                raise ValueError("'#' wildcard must be the last topic segment")
            return True
        if index >= len(topic_parts):
            return False
        if part == "+":
            continue
        if part != topic_parts[index]:
            return False
    return len(pattern_parts) == len(topic_parts)


@dataclass
class Subscription:
    """A registered subscriber: a topic pattern plus a handler."""

    subscription_id: int
    pattern: str
    handler: MessageHandler = field(repr=False)
    subscriber_name: str = "anonymous"
    delivered: int = 0
    active: bool = True

    def cancel(self) -> None:
        """Stop receiving messages on this subscription."""
        self.active = False


@dataclass
class BrokerStatistics:
    """Counters the middleware-layer benchmarks read off the broker."""

    published: int = 0
    delivered: int = 0
    dropped_no_subscriber: int = 0
    per_topic_published: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    @property
    def fanout(self) -> float:
        """Average deliveries per published message."""
        if self.published == 0:
            return 0.0
        return self.delivered / self.published


class Broker:
    """In-process pub/sub broker with optional delivery latency.

    Parameters
    ----------
    scheduler:
        When given, deliveries are scheduled ``delivery_latency`` simulated
        seconds after publication instead of being synchronous, which lets
        the end-to-end latency experiments account for middleware hops.
    delivery_latency:
        Simulated per-hop latency in seconds (ignored without a scheduler).
    """

    def __init__(
        self,
        scheduler: Optional[SimulationScheduler] = None,
        delivery_latency: float = 0.0,
    ):
        self._subscriptions: List[Subscription] = []
        self._ids = itertools.count(1)
        self.scheduler = scheduler
        self.delivery_latency = delivery_latency
        self.statistics = BrokerStatistics()
        self._retained: Dict[str, Message] = {}

    # ------------------------------------------------------------------ #
    # subscription management
    # ------------------------------------------------------------------ #

    def subscribe(
        self,
        pattern: str,
        handler: MessageHandler,
        subscriber_name: str = "anonymous",
        receive_retained: bool = True,
    ) -> Subscription:
        """Register ``handler`` for messages whose topic matches ``pattern``."""
        subscription = Subscription(
            subscription_id=next(self._ids),
            pattern=pattern,
            handler=handler,
            subscriber_name=subscriber_name,
        )
        self._subscriptions.append(subscription)
        if receive_retained:
            for topic, message in self._retained.items():
                if topic_matches(pattern, topic):
                    self._deliver(subscription, message)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Cancel a subscription."""
        subscription.cancel()
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)

    @property
    def subscriptions(self) -> List[Subscription]:
        """The active subscriptions."""
        return [s for s in self._subscriptions if s.active]

    # ------------------------------------------------------------------ #
    # publication
    # ------------------------------------------------------------------ #

    def publish(
        self,
        topic: str,
        payload: Any,
        timestamp: Optional[float] = None,
        headers: Optional[Dict[str, Any]] = None,
        retain: bool = False,
    ) -> Message:
        """Publish a payload on ``topic`` and fan it out to subscribers."""
        if timestamp is None:
            timestamp = self.scheduler.clock.now if self.scheduler else 0.0
        message = Message(
            topic=topic, payload=payload, timestamp=timestamp, headers=dict(headers or {})
        )
        if retain:
            self._retained[topic] = message
        self.statistics.published += 1
        self.statistics.per_topic_published[topic] += 1

        recipients = [
            s for s in self._subscriptions if s.active and topic_matches(s.pattern, topic)
        ]
        if not recipients:
            self.statistics.dropped_no_subscriber += 1
            return message
        for subscription in recipients:
            if self.scheduler is not None and self.delivery_latency > 0:
                self.scheduler.schedule(
                    self.delivery_latency,
                    lambda s=subscription, m=message: self._deliver(s, m),
                )
            else:
                self._deliver(subscription, message)
        return message

    def _deliver(self, subscription: Subscription, message: Message) -> None:
        if not subscription.active:
            return
        subscription.handler(message)
        subscription.delivered += 1
        self.statistics.delivered += 1

    def __repr__(self) -> str:
        return (
            f"<Broker subscriptions={len(self.subscriptions)} "
            f"published={self.statistics.published} delivered={self.statistics.delivered}>"
        )
