"""Topic-based publish/subscribe message broker.

This is the message-oriented-middleware backbone: the physical layer
publishes raw observation messages, the ontology segment layer subscribes,
annotates and republishes semantic messages, and the CEP engine and the
dissemination channels subscribe downstream.  Topics use ``/``-separated
segments with MQTT-style wildcards (``+`` for one segment, ``#`` for the
rest), which is how the application abstraction layer exposes selective
subscriptions to applications.

Routing is indexed by a segment trie: every subscription pattern is
inserted segment-by-segment (literal children, a ``+`` branch, and a
``#`` bucket per node), so matching a published topic walks at most
O(topic depth) trie levels instead of scanning every subscription.
Retained messages live on the trie node of their (literal) topic path,
which makes retained replay for a late wildcard subscriber a walk of the
same trie.  Invalid patterns (a ``#`` that is not the last segment) are
rejected when ``subscribe`` is called, and cancelled subscriptions are
pruned from the trie immediately so churn does not leak memory.
"""

from __future__ import annotations

import itertools
import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.streams.messages import Message
from repro.streams.scheduler import SimulationScheduler

MessageHandler = Callable[[Message], None]

MULTI_WILDCARD = "#"
SINGLE_WILDCARD = "+"


def validate_pattern(pattern: str) -> List[str]:
    """Split a subscription pattern, rejecting a misplaced ``#``.

    Returns the pattern's segments so callers do not re-split.
    """
    parts = pattern.split("/")
    for index, part in enumerate(parts):
        if part == MULTI_WILDCARD and index != len(parts) - 1:
            raise ValueError("'#' wildcard must be the last topic segment")
    return parts


def topic_matches(pattern: str, topic: str) -> bool:
    """MQTT-style topic matching.

    ``+`` matches exactly one segment, ``#`` (which must be last) matches
    any remaining segments including none.
    """
    pattern_parts = pattern.split("/")
    topic_parts = topic.split("/")
    for index, part in enumerate(pattern_parts):
        if part == MULTI_WILDCARD:
            if index != len(pattern_parts) - 1:
                raise ValueError("'#' wildcard must be the last topic segment")
            return True
        if index >= len(topic_parts):
            return False
        if part == SINGLE_WILDCARD:
            continue
        if part != topic_parts[index]:
            return False
    return len(pattern_parts) == len(topic_parts)


@dataclass
class Subscription:
    """A registered subscriber: a topic pattern plus a handler."""

    subscription_id: int
    pattern: str
    handler: MessageHandler = field(repr=False)
    subscriber_name: str = "anonymous"
    delivered: int = 0
    active: bool = True
    #: Set by the owning broker so ``cancel`` prunes the routing trie.
    _detach: Optional[Callable[["Subscription"], None]] = field(
        default=None, repr=False, compare=False
    )
    #: True while the broker replays retained messages to this fresh
    #: subscription *outside* the lock; concurrent publishes park their
    #: messages in ``_backlog`` (under the lock) so per-subscription order
    #: stays retained-snapshot-then-publish-order without any user handler
    #: ever running while the broker lock is held.
    _replaying: bool = field(default=False, repr=False, compare=False)
    _backlog: List[Message] = field(default_factory=list, repr=False, compare=False)

    def cancel(self) -> None:
        """Stop receiving messages on this subscription."""
        self.active = False
        if self._detach is not None:
            detach, self._detach = self._detach, None
            detach(self)


class _TrieNode:
    """One segment level of the routing trie.

    ``children`` holds literal next-segment branches, ``plus`` the ``+``
    wildcard branch, ``hash_subscriptions`` the subscriptions whose pattern
    ends in ``#`` at this level, ``subscriptions`` the patterns that end
    exactly here, and ``retained`` the retained message of the literal
    topic path ending here.
    """

    __slots__ = ("children", "plus", "subscriptions", "hash_subscriptions", "retained")

    def __init__(self) -> None:
        self.children: Dict[str, _TrieNode] = {}
        self.plus: Optional[_TrieNode] = None
        self.subscriptions: List[Subscription] = []
        self.hash_subscriptions: List[Subscription] = []
        self.retained: Optional[Message] = None

    @property
    def prunable(self) -> bool:
        return (
            not self.children
            and self.plus is None
            and not self.subscriptions
            and not self.hash_subscriptions
            and self.retained is None
        )


class SubscriptionTrie:
    """Segment trie over subscription patterns and retained topics."""

    def __init__(self) -> None:
        self.root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -------------------------------------------------------------- #
    # maintenance
    # -------------------------------------------------------------- #

    def insert(self, subscription: Subscription, parts: Optional[List[str]] = None) -> None:
        """Insert a subscription pattern.

        ``parts`` may carry the segments returned by a prior
        :func:`validate_pattern` call to avoid re-splitting.
        """
        if parts is None:
            parts = validate_pattern(subscription.pattern)
        node = self.root
        for part in parts[:-1]:
            node = self._descend(node, part)
        last = parts[-1]
        if last == MULTI_WILDCARD:
            node.hash_subscriptions.append(subscription)
        else:
            node = self._descend(node, last)
            node.subscriptions.append(subscription)
        self._size += 1

    def _descend(self, node: _TrieNode, part: str) -> _TrieNode:
        if part == SINGLE_WILDCARD:
            if node.plus is None:
                node.plus = _TrieNode()
            return node.plus
        child = node.children.get(part)
        if child is None:
            child = node.children[part] = _TrieNode()
        return child

    def remove(self, subscription: Subscription) -> bool:
        """Remove a subscription and prune now-empty trie branches."""
        parts = subscription.pattern.split("/")
        return self._remove(self.root, parts, 0, subscription)

    def _remove(
        self, node: _TrieNode, parts: List[str], index: int, subscription: Subscription
    ) -> bool:
        if index == len(parts) - 1 and parts[index] == MULTI_WILDCARD:
            if subscription not in node.hash_subscriptions:
                return False
            node.hash_subscriptions.remove(subscription)
            self._size -= 1
            return True
        if index == len(parts):
            if subscription not in node.subscriptions:
                return False
            node.subscriptions.remove(subscription)
            self._size -= 1
            return True
        part = parts[index]
        if part == SINGLE_WILDCARD:
            child = node.plus
        else:
            child = node.children.get(part)
        if child is None:
            return False
        removed = self._remove(child, parts, index + 1, subscription)
        if removed and child.prunable:
            if part == SINGLE_WILDCARD:
                node.plus = None
            else:
                del node.children[part]
        return removed

    # -------------------------------------------------------------- #
    # routing
    # -------------------------------------------------------------- #

    def match(self, topic: str) -> List[Subscription]:
        """All subscriptions whose pattern matches ``topic``."""
        recipients: List[Subscription] = []
        self._match(self.root, topic.split("/"), 0, recipients)
        return recipients

    def _match(
        self, node: _TrieNode, parts: List[str], index: int, out: List[Subscription]
    ) -> None:
        # a '#' at this level matches all remaining segments, including none
        out.extend(node.hash_subscriptions)
        if index == len(parts):
            out.extend(node.subscriptions)
            return
        child = node.children.get(parts[index])
        if child is not None:
            self._match(child, parts, index + 1, out)
        if node.plus is not None:
            self._match(node.plus, parts, index + 1, out)

    # -------------------------------------------------------------- #
    # retained messages
    # -------------------------------------------------------------- #

    def set_retained(self, topic: str, message: Message) -> None:
        """Store ``message`` on the literal trie path of ``topic``."""
        node = self.root
        for part in topic.split("/"):
            child = node.children.get(part)
            if child is None:
                child = node.children[part] = _TrieNode()
            node = child
        node.retained = message

    def retained_matching(self, pattern: str) -> List[Message]:
        """Retained messages whose topic matches a subscription pattern."""
        messages: List[Message] = []
        self._retained(self.root, validate_pattern(pattern), 0, messages)
        return messages

    def _retained(
        self, node: _TrieNode, parts: List[str], index: int, out: List[Message]
    ) -> None:
        if index == len(parts):
            if node.retained is not None:
                out.append(node.retained)
            return
        part = parts[index]
        if part == MULTI_WILDCARD:
            self._all_retained(node, out)
            return
        if part == SINGLE_WILDCARD:
            for child in node.children.values():
                self._retained(child, parts, index + 1, out)
            return
        child = node.children.get(part)
        if child is not None:
            self._retained(child, parts, index + 1, out)

    def _all_retained(self, node: _TrieNode, out: List[Message]) -> None:
        if node.retained is not None:
            out.append(node.retained)
        for child in node.children.values():
            self._all_retained(child, out)

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #

    def node_count(self) -> int:
        """Number of trie nodes (used by the pruning tests)."""
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
            if node.plus is not None:
                stack.append(node.plus)
        return count

    def walk(self) -> Iterator[Subscription]:
        """Iterate every stored subscription (insertion order per node)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield from node.hash_subscriptions
            yield from node.subscriptions
            stack.extend(node.children.values())
            if node.plus is not None:
                stack.append(node.plus)


@dataclass
class BrokerStatistics:
    """Counters the middleware-layer benchmarks read off the broker."""

    published: int = 0
    delivered: int = 0
    dropped_no_subscriber: int = 0
    per_topic_published: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    @property
    def fanout(self) -> float:
        """Average deliveries per published message."""
        if self.published == 0:
            return 0.0
        return self.delivered / self.published


class Broker:
    """In-process pub/sub broker with optional delivery latency.

    Thread safety: the routing trie, the retained-message store, the
    subscription registry and the statistics counters are guarded by one
    reentrant lock, so per-shard ingest workers may publish (and
    applications may subscribe / cancel) concurrently.  Publish fan-out
    invokes handlers *outside* the lock (one slow handler never blocks
    other threads; a handler racing a concurrent ``cancel`` may still
    observe one in-flight delivery), while subscribe-time retained replay
    runs *under* the lock so a concurrent newer publish cannot be
    reordered behind the stale snapshot.  The lock is reentrant, so
    handlers may publish or subscribe from either context without
    deadlocking against their own thread.

    Parameters
    ----------
    scheduler:
        When given, deliveries are scheduled ``delivery_latency`` simulated
        seconds after publication instead of being synchronous, which lets
        the end-to-end latency experiments account for middleware hops.
    delivery_latency:
        Simulated per-hop latency in seconds (ignored without a scheduler).
    """

    def __init__(
        self,
        scheduler: Optional[SimulationScheduler] = None,
        delivery_latency: float = 0.0,
    ):
        self._trie = SubscriptionTrie()
        self._subscriptions: List[Subscription] = []
        self._ids = itertools.count(1)
        self._lock = threading.RLock()
        self.scheduler = scheduler
        self.delivery_latency = delivery_latency
        self.statistics = BrokerStatistics()

    # ------------------------------------------------------------------ #
    # subscription management
    # ------------------------------------------------------------------ #

    def subscribe(
        self,
        pattern: str,
        handler: MessageHandler,
        subscriber_name: str = "anonymous",
        receive_retained: bool = True,
    ) -> Subscription:
        """Register ``handler`` for messages whose topic matches ``pattern``.

        Raises :class:`ValueError` immediately for an invalid pattern
        (a ``#`` that is not the last segment) instead of failing later
        at publish time.
        """
        parts = validate_pattern(pattern)
        subscription = Subscription(
            subscription_id=next(self._ids),
            pattern=pattern,
            handler=handler,
            subscriber_name=subscriber_name,
        )
        subscription._detach = self._detach
        retained: List[Message] = []
        with self._lock:
            self._trie.insert(subscription, parts)
            self._subscriptions.append(subscription)
            if receive_retained:
                # snapshot the retained messages under the lock and mark
                # the subscription as replaying: once it is in the trie, a
                # concurrent publisher could otherwise deliver a *newer*
                # message before the snapshot replay, leaving the
                # subscriber stuck on the stale value.  Publishers that
                # race the replay park their messages in the
                # subscription's backlog (see ``publish``), which is
                # drained in publish order below — so ordering is
                # preserved WITHOUT running the handler under the lock.
                # Holding the lock across handler calls deadlocks when a
                # subscriber thread's handler blocks on work owned by a
                # publisher thread that is itself waiting for the broker
                # lock (the asyncio serving gateway subscribes from the
                # event-loop thread while shard workers publish).
                retained = self._trie.retained_matching(pattern)
                subscription._replaying = bool(retained)
        for message in retained:
            self._deliver(subscription, message)
        if retained:
            self._drain_backlog(subscription)
        return subscription

    def _drain_backlog(self, subscription: Subscription) -> None:
        """Deliver publishes parked during retained replay, in order.

        Loops because a handler running during the drain can overlap yet
        another concurrent publish; the replay flag is only cleared (under
        the lock) once the backlog is observed empty, after which
        publishers deliver directly again.
        """
        while True:
            with self._lock:
                backlog, subscription._backlog = subscription._backlog, []
                if not backlog:
                    subscription._replaying = False
                    return
            for message in backlog:
                self._deliver(subscription, message)

    def unsubscribe(self, subscription: Subscription) -> None:
        """Cancel a subscription (idempotent)."""
        subscription.cancel()

    def _detach(self, subscription: Subscription) -> None:
        """Prune a cancelled subscription from the trie and the registry."""
        with self._lock:
            self._trie.remove(subscription)
            try:
                self._subscriptions.remove(subscription)
            except ValueError:
                pass

    @property
    def subscriptions(self) -> List[Subscription]:
        """The active subscriptions."""
        with self._lock:
            return [s for s in self._subscriptions if s.active]

    # ------------------------------------------------------------------ #
    # publication
    # ------------------------------------------------------------------ #

    def publish(
        self,
        topic: str,
        payload: Any,
        timestamp: Optional[float] = None,
        headers: Optional[Dict[str, Any]] = None,
        retain: bool = False,
    ) -> Message:
        """Publish a payload on ``topic`` and fan it out to subscribers."""
        if timestamp is None:
            timestamp = self.scheduler.clock.now if self.scheduler else 0.0
        message = Message(
            topic=topic, payload=payload, timestamp=timestamp, headers=dict(headers or {})
        )
        with self._lock:
            if retain:
                self._trie.set_retained(topic, message)
            self.statistics.published += 1
            self.statistics.per_topic_published[topic] += 1
            matched = self._trie.match(topic)
            if not matched:
                self.statistics.dropped_no_subscriber += 1
                return message
            recipients = []
            for subscription in matched:
                if subscription._replaying:
                    # a fresh subscriber is still replaying its retained
                    # snapshot: park this message so it is delivered after
                    # the snapshot, in publish order (the subscribing
                    # thread drains the backlog)
                    subscription._backlog.append(message)
                else:
                    recipients.append(subscription)
        # fan out outside the lock so handlers may publish / subscribe
        # reentrantly (and so one slow handler never blocks other threads)
        for subscription in recipients:
            if self.scheduler is not None and self.delivery_latency > 0:
                self.scheduler.schedule(
                    self.delivery_latency,
                    lambda s=subscription, m=message: self._deliver(s, m),
                )
            else:
                self._deliver(subscription, message)
        return message

    def _deliver(self, subscription: Subscription, message: Message) -> None:
        if not subscription.active:
            return
        subscription.handler(message)
        with self._lock:
            subscription.delivered += 1
            self.statistics.delivered += 1

    def __repr__(self) -> str:
        return (
            f"<Broker subscriptions={len(self.subscriptions)} "
            f"published={self.statistics.published} delivered={self.statistics.delivered}>"
        )
