"""Functional stream operators.

Small composable operators for building per-topic processing pipelines --
the "abstraction of complex network communication" the middleware's
application abstraction layer offers.  A :class:`StreamPipeline` wraps a
chain of operators and can be attached directly to a broker subscription.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generic, Iterable, List, Optional, TypeVar

from repro.streams.broker import Broker
from repro.streams.messages import Message
from repro.streams.window import CountWindow

T = TypeVar("T")
U = TypeVar("U")


class Operator:
    """Base class: an operator consumes one item and emits zero or more."""

    def process(self, item: Any) -> List[Any]:
        """Transform ``item`` into a (possibly empty) list of outputs."""
        raise NotImplementedError


class MapOperator(Operator):
    """Apply a function to every item."""

    def __init__(self, fn: Callable[[Any], Any]):
        self._fn = fn

    def process(self, item: Any) -> List[Any]:
        return [self._fn(item)]


class FilterOperator(Operator):
    """Keep only items satisfying the predicate."""

    def __init__(self, predicate: Callable[[Any], bool]):
        self._predicate = predicate

    def process(self, item: Any) -> List[Any]:
        return [item] if self._predicate(item) else []


class FlatMapOperator(Operator):
    """Apply a function returning an iterable and flatten the result."""

    def __init__(self, fn: Callable[[Any], Iterable[Any]]):
        self._fn = fn

    def process(self, item: Any) -> List[Any]:
        return list(self._fn(item))


class DeduplicateOperator(Operator):
    """Suppress items whose key was already seen among the last ``history``."""

    def __init__(self, key_fn: Callable[[Any], Any], history: int = 1024):
        self._key_fn = key_fn
        self._window = CountWindow(history)
        self._seen: set = set()

    def process(self, item: Any) -> List[Any]:
        key = self._key_fn(item)
        if key in self._seen:
            return []
        if self._window.full:
            oldest = self._window.items[0]
            self._seen.discard(oldest)
        self._window.add(key)
        self._seen.add(key)
        return [item]


class MovingAggregateOperator(Operator):
    """Emit a running aggregate (mean/min/max/sum) over the last N values."""

    _AGGREGATES: Dict[str, Callable[[List[float]], float]] = {
        "mean": lambda values: statistics.fmean(values),
        "min": min,
        "max": max,
        "sum": sum,
        "median": lambda values: statistics.median(values),
    }

    def __init__(
        self,
        value_fn: Callable[[Any], float],
        size: int = 10,
        aggregate: str = "mean",
    ):
        if aggregate not in self._AGGREGATES:
            raise ValueError(f"unknown aggregate: {aggregate!r}")
        self._value_fn = value_fn
        self._window = CountWindow(size)
        self._aggregate = self._AGGREGATES[aggregate]
        self.aggregate_name = aggregate

    def process(self, item: Any) -> List[Any]:
        self._window.add(self._value_fn(item))
        return [(item, self._aggregate(self._window.items))]


@dataclass
class PipelineStatistics:
    """Item counters for a pipeline."""

    consumed: int = 0
    emitted: int = 0


class StreamPipeline:
    """A chain of operators with an optional sink.

    Example
    -------
    ::

        pipeline = (StreamPipeline()
                    .filter(lambda r: r.property_name == "rainfall")
                    .map(lambda r: r.value)
                    .sink(totals.append))
        broker.subscribe("raw/#", pipeline.on_message)
    """

    def __init__(self) -> None:
        self._operators: List[Operator] = []
        self._sinks: List[Callable[[Any], None]] = []
        self.statistics = PipelineStatistics()

    def add_operator(self, operator: Operator) -> "StreamPipeline":
        """Append an operator to the chain (chainable)."""
        self._operators.append(operator)
        return self

    def map(self, fn: Callable[[Any], Any]) -> "StreamPipeline":
        """Append a map stage."""
        return self.add_operator(MapOperator(fn))

    def filter(self, predicate: Callable[[Any], bool]) -> "StreamPipeline":
        """Append a filter stage."""
        return self.add_operator(FilterOperator(predicate))

    def flat_map(self, fn: Callable[[Any], Iterable[Any]]) -> "StreamPipeline":
        """Append a flat-map stage."""
        return self.add_operator(FlatMapOperator(fn))

    def deduplicate(self, key_fn: Callable[[Any], Any], history: int = 1024) -> "StreamPipeline":
        """Append a deduplication stage."""
        return self.add_operator(DeduplicateOperator(key_fn, history))

    def moving_aggregate(
        self, value_fn: Callable[[Any], float], size: int = 10, aggregate: str = "mean"
    ) -> "StreamPipeline":
        """Append a moving-aggregate stage."""
        return self.add_operator(MovingAggregateOperator(value_fn, size, aggregate))

    def sink(self, consumer: Callable[[Any], None]) -> "StreamPipeline":
        """Register a terminal consumer for pipeline outputs."""
        self._sinks.append(consumer)
        return self

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def push(self, item: Any) -> List[Any]:
        """Run one item through the chain; returns (and sinks) the outputs."""
        self.statistics.consumed += 1
        items = [item]
        for operator in self._operators:
            next_items: List[Any] = []
            for current in items:
                next_items.extend(operator.process(current))
            items = next_items
            if not items:
                break
        for output in items:
            self.statistics.emitted += 1
            for sink in self._sinks:
                sink(output)
        return items

    def push_many(self, items: Iterable[Any]) -> List[Any]:
        """Run many items through the chain, collecting all outputs."""
        outputs: List[Any] = []
        for item in items:
            outputs.extend(self.push(item))
        return outputs

    def on_message(self, message: Message) -> None:
        """Broker-compatible handler: feeds the message payload in."""
        self.push(message.payload)

    def attach(self, broker: Broker, pattern: str, name: str = "pipeline") -> None:
        """Subscribe this pipeline to a broker topic pattern."""
        broker.subscribe(pattern, self.on_message, subscriber_name=name)
