"""Indigenous knowledge (IK) layer.

The paper's central integration target: drought-forecasting knowledge held
by local communities (worm abundance, tree phenology, animal behaviour, sky
signs), gathered "through the use of questionnaire, workshop and interactive
sessions" and turned into the rule set the CEP engine reasons with.

``repro.ik.indicators``
    The catalogue of indicator definitions (what each indicator is, what it
    implies, its community-assigned reliability and lead time) and the
    activity model tying indicator visibility to the simulated environment.
``repro.ik.knowledge_base``
    The IK knowledge base: indicator definitions plus elicited forecast
    rules, materialisable into the unified ontology.
``repro.ik.elicitation``
    Simulates the questionnaire / workshop process that produces a noisy,
    community-specific knowledge base from the reference catalogue.
``repro.ik.fuzzy``
    Fuzzy membership machinery for combining graded indicator evidence.
``repro.ik.rules``
    Derives CEP rules from the knowledge base ("set of syntactic derivation
    rules from indigenous knowledge").
"""

from repro.ik.indicators import (
    INDICATOR_CATALOGUE,
    IndicatorActivityModel,
    IndicatorDefinition,
)
from repro.ik.knowledge_base import IndigenousKnowledgeBase
from repro.ik.elicitation import ElicitationCampaign
from repro.ik.fuzzy import FuzzyVariable, TriangularMembership, aggregate_evidence
from repro.ik.rules import derive_cep_rules

__all__ = [
    "IndicatorDefinition",
    "INDICATOR_CATALOGUE",
    "IndicatorActivityModel",
    "IndigenousKnowledgeBase",
    "ElicitationCampaign",
    "FuzzyVariable",
    "TriangularMembership",
    "aggregate_evidence",
    "derive_cep_rules",
]
