"""Elicitation of indigenous knowledge.

The paper gathers IK "through the use of questionnaire, workshop and
interactive sessions" with Free State communities.  We cannot interview
farmers, so this module simulates the elicitation process: starting from the
reference catalogue it produces a community knowledge base whose coverage
and fidelity depend on how the campaign is run -- how many respondents,
how consistent their answers are, and how conservative the inclusion
threshold is.  The E5 benchmark sweeps these parameters to show how IK-only
forecast reliability degrades with poorer elicitation, which is the accuracy
gap the paper's motivation section describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ik.indicators import INDICATOR_CATALOGUE, IndicatorDefinition
from repro.ik.knowledge_base import IndigenousKnowledgeBase


@dataclass
class RespondentAnswer:
    """One respondent's account of one indicator."""

    respondent_id: str
    indicator_key: str
    recognises: bool
    stated_implication: str          # "drier" | "wetter"
    stated_reliability: float
    stated_lead_time_days: float


@dataclass
class ElicitationReport:
    """Summary of one campaign, kept for the documentation and benchmarks."""

    community: str
    respondents: int
    indicators_elicited: int
    indicators_rejected: int
    mean_reliability_error: float
    disagreement_rate: float
    answers: List[RespondentAnswer] = field(default_factory=list, repr=False)


class ElicitationCampaign:
    """Simulates a questionnaire / workshop campaign.

    Parameters
    ----------
    community:
        Community name recorded as provenance.
    respondents:
        Number of community members interviewed.
    recognition_rate:
        Probability a respondent knows a given indicator at all.
    implication_noise:
        Probability a respondent states the *opposite* implication
        (cognitive heterogeneity within the community).
    reliability_noise:
        Standard deviation of the noise on stated reliabilities.
    inclusion_threshold:
        Minimum fraction of respondents that must recognise an indicator
        (and agree on its implication) for it to enter the knowledge base.
    seed:
        RNG seed for a reproducible campaign.
    """

    def __init__(
        self,
        community: str = "free-state-community",
        respondents: int = 30,
        recognition_rate: float = 0.75,
        implication_noise: float = 0.08,
        reliability_noise: float = 0.1,
        inclusion_threshold: float = 0.4,
        seed: int = 0,
    ):
        if respondents < 1:
            raise ValueError("a campaign needs at least one respondent")
        self.community = community
        self.respondents = respondents
        self.recognition_rate = recognition_rate
        self.implication_noise = implication_noise
        self.reliability_noise = reliability_noise
        self.inclusion_threshold = inclusion_threshold
        self._rng = random.Random(seed)
        self.last_report: Optional[ElicitationReport] = None

    # ------------------------------------------------------------------ #
    # the campaign
    # ------------------------------------------------------------------ #

    def _interview(self, respondent_id: str, definition: IndicatorDefinition) -> RespondentAnswer:
        recognises = self._rng.random() < self.recognition_rate
        if not recognises:
            return RespondentAnswer(
                respondent_id, definition.key, False, definition.implies,
                0.0, definition.lead_time_days,
            )
        flips = self._rng.random() < self.implication_noise
        stated_implication = definition.implies
        if flips:
            stated_implication = "wetter" if definition.implies == "drier" else "drier"
        stated_reliability = min(
            1.0,
            max(0.05, definition.reliability + self._rng.gauss(0.0, self.reliability_noise)),
        )
        stated_lead_time = max(
            1.0, definition.lead_time_days + self._rng.gauss(0.0, definition.lead_time_days * 0.2)
        )
        return RespondentAnswer(
            respondent_id, definition.key, True, stated_implication,
            stated_reliability, stated_lead_time,
        )

    def run(
        self, catalogue: Optional[Dict[str, IndicatorDefinition]] = None
    ) -> IndigenousKnowledgeBase:
        """Run the campaign and build the community knowledge base."""
        reference = dict(catalogue or INDICATOR_CATALOGUE)
        answers: List[RespondentAnswer] = []
        elicited: Dict[str, IndicatorDefinition] = {}
        rejected = 0
        reliability_errors: List[float] = []
        disagreements = 0
        recognitions = 0

        for definition in reference.values():
            indicator_answers = [
                self._interview(f"{self.community}-resp-{i:03d}", definition)
                for i in range(self.respondents)
            ]
            answers.extend(indicator_answers)
            recognising = [a for a in indicator_answers if a.recognises]
            if not recognising:
                rejected += 1
                continue
            recognitions += len(recognising)
            majority_implication = max(
                ("drier", "wetter"),
                key=lambda c: sum(1 for a in recognising if a.stated_implication == c),
            )
            agreeing = [a for a in recognising if a.stated_implication == majority_implication]
            disagreements += len(recognising) - len(agreeing)
            support = len(agreeing) / self.respondents
            if support < self.inclusion_threshold:
                rejected += 1
                continue
            mean_reliability = sum(a.stated_reliability for a in agreeing) / len(agreeing)
            mean_lead_time = sum(a.stated_lead_time_days for a in agreeing) / len(agreeing)
            reliability_errors.append(abs(mean_reliability - definition.reliability))
            elicited[definition.key] = IndicatorDefinition(
                key=definition.key,
                label=definition.label,
                category=definition.category,
                implies=majority_implication,
                reliability=mean_reliability,
                lead_time_days=mean_lead_time,
                driver=definition.driver,
                driver_direction=definition.driver_direction,
                baseline_activity=definition.baseline_activity,
            )

        self.last_report = ElicitationReport(
            community=self.community,
            respondents=self.respondents,
            indicators_elicited=len(elicited),
            indicators_rejected=rejected,
            mean_reliability_error=(
                sum(reliability_errors) / len(reliability_errors)
                if reliability_errors
                else 0.0
            ),
            disagreement_rate=(disagreements / recognitions) if recognitions else 0.0,
            answers=answers,
        )
        return IndigenousKnowledgeBase(indicators=elicited, community=self.community)
