"""The indigenous knowledge base.

Holds the indicator definitions a community actually uses (which may be a
noisy subset of the reference catalogue -- see
:mod:`repro.ik.elicitation`), answers evidence queries over indicator
sightings, and materialises the knowledge into the unified ontology as
individuals of the IK ontology classes so that it can be queried and
reasoned over alongside the sensor observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ik.fuzzy import aggregate_evidence
from repro.ik.indicators import INDICATOR_CATALOGUE, IndicatorDefinition
from repro.ontologies.vocabulary import AFRICRID, IK
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import RDF, RDFS
from repro.semantics.rdf.term import IRI, Literal
from repro.semantics.rdf.triple import Triple
from repro.streams.messages import ObservationRecord

_CATEGORY_CLASSES = {
    "plant": IK.PlantIndicator,
    "animal": IK.AnimalIndicator,
    "insect": IK.InsectIndicator,
    "meteorological": IK.MeteorologicalIndicator,
    "astronomical": IK.AstronomicalIndicator,
    "hydrological": IK.HydrologicalIndicator,
}

_CONDITION_INDIVIDUALS = {
    "drier": IK.DrierCondition,
    "wetter": IK.WetterCondition,
}


@dataclass
class SightingEvidence:
    """One piece of IK evidence extracted from a sighting record."""

    indicator_key: str
    condition: str
    strength: float
    observer: str
    timestamp: float


class IndigenousKnowledgeBase:
    """A community's indigenous drought-forecasting knowledge.

    Parameters
    ----------
    indicators:
        The indicator definitions this community recognises.  Defaults to
        the full reference catalogue.
    community:
        Name recorded as the provenance of elicited rules.
    """

    def __init__(
        self,
        indicators: Optional[Dict[str, IndicatorDefinition]] = None,
        community: str = "free-state-reference",
    ):
        self.indicators: Dict[str, IndicatorDefinition] = dict(
            indicators if indicators is not None else INDICATOR_CATALOGUE
        )
        self.community = community
        self.sightings: List[SightingEvidence] = []

    # ------------------------------------------------------------------ #
    # knowledge access
    # ------------------------------------------------------------------ #

    def get(self, indicator_key: str) -> Optional[IndicatorDefinition]:
        """The definition for an indicator key, or ``None`` if unknown."""
        return self.indicators.get(indicator_key)

    def known_keys(self) -> List[str]:
        """The indicator keys this knowledge base recognises."""
        return sorted(self.indicators)

    def indicators_implying(self, condition: str) -> List[IndicatorDefinition]:
        """Indicators implying ``condition`` ('drier' or 'wetter')."""
        return [d for d in self.indicators.values() if d.implies == condition]

    def mean_lead_time(self, condition: str = "drier") -> float:
        """Mean lead time (days) of the indicators implying ``condition``."""
        relevant = self.indicators_implying(condition)
        if not relevant:
            return 0.0
        return sum(d.lead_time_days for d in relevant) / len(relevant)

    # ------------------------------------------------------------------ #
    # evidence handling
    # ------------------------------------------------------------------ #

    def register_sighting(self, record: ObservationRecord) -> Optional[SightingEvidence]:
        """Convert an ``ik_sighting`` observation record into evidence.

        Records naming unknown indicators are ignored (returns ``None``) --
        the community simply does not read that sign.
        """
        definition = self.indicators.get(record.property_name)
        if definition is None:
            return None
        evidence = SightingEvidence(
            indicator_key=definition.key,
            condition=definition.implies,
            strength=max(0.0, min(1.0, record.value)) * definition.reliability,
            observer=record.source_id,
            timestamp=record.timestamp,
        )
        self.sightings.append(evidence)
        return evidence

    def evidence_between(self, start: float, end: float) -> List[SightingEvidence]:
        """Evidence whose timestamp falls within ``[start, end)``."""
        return [e for e in self.sightings if start <= e.timestamp < end]

    def aggregate(
        self, start: float, end: float, corroboration_observers: int = 3
    ) -> Dict[str, float]:
        """Aggregate evidence in a window into condition strengths.

        Per indicator, the strongest report sets the evidence strength and a
        corroboration factor (distinct observers / ``corroboration_observers``,
        capped at 1) discounts indicators only one or two people claim to
        have seen.  Indicator-level evidence then combines with a noisy-OR
        per implied condition -- many observers repeating the *same* sign do
        not count more than the sign itself, but independent signs do.
        """
        per_indicator: Dict[str, Dict[str, object]] = {}
        for evidence in self.evidence_between(start, end):
            entry = per_indicator.setdefault(
                evidence.indicator_key,
                {"condition": evidence.condition, "strength": 0.0, "observers": set()},
            )
            entry["strength"] = max(entry["strength"], evidence.strength)
            entry["observers"].add(evidence.observer)
        pairs = []
        for entry in per_indicator.values():
            corroboration = min(
                1.0, len(entry["observers"]) / float(corroboration_observers)
            )
            pairs.append((entry["condition"], entry["strength"] * corroboration))
        return aggregate_evidence(pairs)

    def clear_sightings(self) -> None:
        """Forget all registered sightings (between scenario runs)."""
        self.sightings.clear()

    # ------------------------------------------------------------------ #
    # ontology materialisation
    # ------------------------------------------------------------------ #

    def materialize(self, graph: Graph) -> int:
        """Write the knowledge base into ``graph`` as IK-ontology individuals.

        Returns the number of triples added.
        """
        before = len(graph)
        for definition in self.indicators.values():
            indicator_iri = AFRICRID[f"indicator/{definition.key}"]
            category_class = _CATEGORY_CLASSES.get(
                definition.category, IK.IndigenousIndicator
            )
            graph.add(Triple(indicator_iri, RDF.type, category_class))
            graph.add(Triple(indicator_iri, RDFS.label, Literal(definition.label)))
            graph.add(
                Triple(indicator_iri, IK.implies, _CONDITION_INDIVIDUALS[definition.implies])
            )
            graph.add(
                Triple(indicator_iri, IK.hasReliability, Literal(definition.reliability))
            )
            graph.add(
                Triple(indicator_iri, IK.hasLeadTimeDays, Literal(definition.lead_time_days))
            )
            rule_iri = AFRICRID[f"ikrule/{definition.key}"]
            graph.add(Triple(rule_iri, RDF.type, IK.IndigenousForecastRule))
            graph.add(Triple(rule_iri, IK.derivedFromIndicator, indicator_iri))
            graph.add(Triple(rule_iri, IK.elicitedFromCommunity, Literal(self.community)))
        return len(graph) - before

    def materialize_sighting(self, graph: Graph, record: ObservationRecord) -> Optional[IRI]:
        """Write one sighting as an ``IndicatorSighting`` individual."""
        definition = self.indicators.get(record.property_name)
        if definition is None:
            return None
        sighting_iri = AFRICRID[
            f"sighting/{record.source_id}/{int(record.timestamp)}/{definition.key}"
        ]
        indicator_iri = AFRICRID[f"indicator/{definition.key}"]
        observer_iri = AFRICRID[f"observer/{record.source_id}"]
        graph.add(Triple(sighting_iri, RDF.type, IK.IndicatorSighting))
        graph.add(Triple(sighting_iri, IK.sightedIndicator, indicator_iri))
        graph.add(Triple(sighting_iri, IK.reportedBy, observer_iri))
        graph.add(Triple(sighting_iri, IK.sightingIntensity, Literal(float(record.value))))
        graph.add(Triple(observer_iri, RDF.type, IK.CommunityObserver))
        return sighting_iri

    def __len__(self) -> int:
        return len(self.indicators)

    def __repr__(self) -> str:
        return (
            f"<IndigenousKnowledgeBase community={self.community!r} "
            f"indicators={len(self.indicators)} sightings={len(self.sightings)}>"
        )
