"""Deriving CEP rules from indigenous knowledge.

This is the concrete mechanism behind the paper's sentence "the CEP engine
infer patterns leading to drought event based on the set of rules derived
from the IK of the local people on drought": for every indicator in the
community knowledge base that implies drier conditions a
:class:`~repro.cep.rules.CepRule` is generated that watches the sighting
stream for corroborated reports (several distinct observers within the
indicator's lead-time window) and emits an ``ik_dry_indication`` derived
event weighted by the indicator's elicited reliability.  Wetter-condition
indicators produce ``ik_wet_indication`` events that argue against a
drought forecast.

A second set of *sensor-side* rules (thresholds and trends on the canonical
properties) is also provided so the engine can detect the environmental
processes of the paper's process ontology; the fusion forecaster consumes
both streams of derived events.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.cep.patterns import CountPattern, ThresholdPattern, TrendPattern
from repro.cep.rules import CepRule
from repro.ik.knowledge_base import IndigenousKnowledgeBase
from repro.streams.scheduler import DAY


def derive_cep_rules(
    knowledge_base: IndigenousKnowledgeBase,
    min_observers: int = 3,
    min_intensity: float = 0.4,
    area: Optional[str] = None,
) -> List[CepRule]:
    """Generate one CEP rule per indicator in the knowledge base.

    Parameters
    ----------
    knowledge_base:
        The community knowledge base produced by elicitation.
    min_observers:
        Number of distinct observers that must corroborate a sighting
        before the rule fires.
    min_intensity:
        Minimum sighting intensity for a report to count.
    area:
        Optional area scoping applied to every generated rule.
    """
    rules: List[CepRule] = []
    for definition in knowledge_base.indicators.values():
        derived_type = (
            "ik_dry_indication" if definition.implies == "drier" else "ik_wet_indication"
        )
        window = max(7.0, definition.lead_time_days) * DAY
        pattern = CountPattern(
            event_type=definition.key,
            minimum=min_observers,
            distinct_sources=True,
            qualifier=lambda event, threshold=min_intensity: event.value >= threshold,
        )
        rules.append(
            CepRule(
                name=f"ik_{definition.key}",
                pattern=pattern,
                window_seconds=window,
                derived_event_type=derived_type,
                min_score=0.0,
                cooldown_seconds=7 * DAY,
                area=area,
                weight=definition.reliability,
                source="indigenous",
            )
        )
    return rules


def sensor_process_rules(area: Optional[str] = None) -> List[CepRule]:
    """The sensor-side process-detection rules of the environmental ontology.

    Each rule detects one of the ENVO processes that culminate in the
    drought onset event (soil drying, rainfall deficit, heat accumulation,
    water depletion, vegetation decline).  The rules watch *anomaly* event
    streams (``<property>_anomaly`` -- standardised departures from the
    seasonal climatology, produced by the DEWS aggregation stage or any
    application) rather than raw values, so an ordinary dry winter does not
    register as a drought precursor.
    """
    rules = [
        CepRule(
            name="soil_drying_process",
            pattern=ThresholdPattern(
                "soil_moisture_anomaly", threshold=-1.0, comparison="below",
                min_fraction=0.75, min_count=5,
            ),
            window_seconds=14 * DAY,
            derived_event_type="soil_drying_process",
            cooldown_seconds=7 * DAY,
            area=area,
            weight=1.0,
            source="sensor",
        ),
        CepRule(
            name="rainfall_deficit_process",
            pattern=ThresholdPattern(
                "rainfall_anomaly", threshold=-0.6, comparison="below",
                min_fraction=0.8, min_count=10,
            ),
            window_seconds=30 * DAY,
            derived_event_type="rainfall_deficit_process",
            cooldown_seconds=10 * DAY,
            area=area,
            weight=1.1,
            source="sensor",
        ),
        CepRule(
            name="heat_accumulation_process",
            pattern=ThresholdPattern(
                "air_temperature_anomaly", threshold=1.0, comparison="above",
                min_fraction=0.6, min_count=5,
            ),
            window_seconds=14 * DAY,
            derived_event_type="heat_accumulation_process",
            cooldown_seconds=7 * DAY,
            area=area,
            weight=0.8,
            source="sensor",
        ),
        CepRule(
            name="water_depletion_process",
            pattern=ThresholdPattern(
                "water_level_anomaly", threshold=-1.0, comparison="below",
                min_fraction=0.75, min_count=6,
            ),
            window_seconds=30 * DAY,
            derived_event_type="water_depletion_process",
            cooldown_seconds=10 * DAY,
            area=area,
            weight=0.9,
            source="sensor",
        ),
        CepRule(
            name="vegetation_decline_process",
            pattern=ThresholdPattern(
                "vegetation_index_anomaly", threshold=-1.0, comparison="below",
                min_fraction=0.7, min_count=5,
            ),
            window_seconds=30 * DAY,
            derived_event_type="vegetation_decline_process",
            cooldown_seconds=10 * DAY,
            area=area,
            weight=0.7,
            source="sensor",
        ),
    ]
    return rules


#: Derived event types that argue for a drought forecast, with the default
#: evidence weight the fusion forecaster assigns to each.
DROUGHT_EVIDENCE_WEIGHTS: Dict[str, float] = {
    "soil_drying_process": 1.0,
    "rainfall_deficit_process": 1.1,
    "heat_accumulation_process": 0.7,
    "water_depletion_process": 0.9,
    "vegetation_decline_process": 0.8,
    "ik_dry_indication": 0.9,
}

#: Derived event types that argue against a drought forecast.
CONTRA_EVIDENCE_WEIGHTS: Dict[str, float] = {
    "ik_wet_indication": 0.8,
}
