"""Fuzzy evidence combination for indigenous knowledge.

IK indicators are graded ("many worms", "a few worms") and individually
unreliable; communities combine several before committing to a forecast.
The ITIKI line of work the paper builds on uses fuzzy membership for exactly
this.  This module provides triangular/trapezoidal membership functions, a
small fuzzy-variable abstraction and the evidence aggregation used by the
IK-only forecaster and the fusion forecaster:

* each indicator sighting contributes ``intensity x reliability`` evidence
  towards the condition it implies,
* evidence for the same condition combines with a noisy-OR (independent
  sources), and
* opposing conditions ("drier" vs "wetter") are resolved by subtracting the
  weaker from the stronger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TriangularMembership:
    """A triangular fuzzy membership function (left, peak, right)."""

    left: float
    peak: float
    right: float

    def __post_init__(self) -> None:
        if not self.left <= self.peak <= self.right:
            raise ValueError("membership requires left <= peak <= right")

    def membership(self, value: float) -> float:
        """Degree of membership of ``value`` in ``[0, 1]``."""
        if value <= self.left or value >= self.right:
            # the degenerate single-point case is fully inside
            if self.left == self.peak == self.right and value == self.peak:
                return 1.0
            return 0.0
        if value == self.peak:
            return 1.0
        if value < self.peak:
            return (value - self.left) / (self.peak - self.left)
        return (self.right - value) / (self.right - self.peak)


@dataclass(frozen=True)
class TrapezoidalMembership:
    """A trapezoidal membership function (left, left_top, right_top, right)."""

    left: float
    left_top: float
    right_top: float
    right: float

    def __post_init__(self) -> None:
        if not self.left <= self.left_top <= self.right_top <= self.right:
            raise ValueError("membership bounds must be ordered")

    def membership(self, value: float) -> float:
        """Degree of membership of ``value`` in ``[0, 1]``."""
        if value < self.left or value > self.right:
            return 0.0
        if self.left_top <= value <= self.right_top:
            return 1.0
        if value < self.left_top:
            if self.left_top == self.left:
                return 1.0
            return (value - self.left) / (self.left_top - self.left)
        if self.right == self.right_top:
            return 1.0
        return (self.right - value) / (self.right - self.right_top)


class FuzzyVariable:
    """A linguistic variable with named fuzzy terms.

    Example: sighting intensity with terms ``few`` / ``some`` / ``many``.
    """

    def __init__(self, name: str, terms: Mapping[str, object]):
        if not terms:
            raise ValueError("a fuzzy variable needs at least one term")
        self.name = name
        self._terms = dict(terms)

    @property
    def terms(self) -> List[str]:
        """The linguistic term names."""
        return list(self._terms)

    def fuzzify(self, value: float) -> Dict[str, float]:
        """Membership of ``value`` in every term."""
        return {
            term: function.membership(value) for term, function in self._terms.items()
        }

    def best_term(self, value: float) -> str:
        """The term with maximum membership for ``value``."""
        memberships = self.fuzzify(value)
        return max(memberships, key=memberships.get)


#: Default linguistic scale for sighting intensity reports.
SIGHTING_INTENSITY = FuzzyVariable(
    "sighting_intensity",
    {
        "few": TriangularMembership(0.0, 0.0, 0.45),
        "some": TriangularMembership(0.25, 0.5, 0.75),
        "many": TriangularMembership(0.55, 1.0, 1.0),
    },
)


def noisy_or(probabilities: Iterable[float]) -> float:
    """Combine independent evidence values with a noisy-OR."""
    result = 1.0
    for probability in probabilities:
        probability = max(0.0, min(1.0, probability))
        result *= 1.0 - probability
    return 1.0 - result


def aggregate_evidence(
    evidence: Sequence[Tuple[str, float]],
) -> Dict[str, float]:
    """Aggregate (condition, strength) evidence pairs.

    Returns a dict with the noisy-OR combined strength per condition plus a
    ``net_drier`` key: combined drier evidence minus combined wetter
    evidence, clipped to ``[-1, 1]``.  Positive ``net_drier`` supports a
    drought-leaning forecast.
    """
    by_condition: Dict[str, List[float]] = {}
    for condition, strength in evidence:
        by_condition.setdefault(condition, []).append(strength)
    combined = {
        condition: noisy_or(strengths) for condition, strengths in by_condition.items()
    }
    drier = combined.get("drier", 0.0)
    wetter = combined.get("wetter", 0.0)
    combined["net_drier"] = max(-1.0, min(1.0, drier - wetter))
    return combined
