"""Indigenous drought indicators.

The catalogue below encodes the indicators the paper and its cited IK
studies (Masinde & Bagula's ITIKI bridge, Mugabe et al.'s Zambia/Zimbabwe
study) describe: biological indicators such as *sifennefene* worm abundance
and *mutiga* / *umtiza* tree phenology, animal behaviour, and
meteorological / astronomical signs read by elders.  Each indicator carries
the condition it implies (drier or wetter season ahead), a community-
assigned reliability, a typical lead time and the environmental driver that
(in the simulation) controls when the indicator actually shows.

The *activity model* closes the loop for experiments: given the ground-truth
environment it computes the probability that an indicator is observable at
a time and place, so simulated community observers report sightings whose
statistics follow the drought ground truth -- imperfectly, at the
reliability the catalogue assigns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sensors.modality import EnvironmentModel
from repro.streams.scheduler import DAY


@dataclass(frozen=True)
class IndicatorDefinition:
    """One indigenous indicator and its elicited interpretation.

    Attributes
    ----------
    key:
        Machine key, e.g. ``"sifennefene_worms"``.
    label:
        Human-readable name as communities describe it.
    category:
        Ontology category: ``plant``, ``animal``, ``insect``,
        ``meteorological``, ``astronomical`` or ``hydrological``.
    implies:
        ``"drier"`` or ``"wetter"`` -- the seasonal condition the indicator
        points to when observed.
    reliability:
        Community-assigned probability in ``[0, 1]`` that the implication
        holds when the indicator is sighted.
    lead_time_days:
        Typical number of days between sighting and the implied condition.
    driver:
        The canonical environmental property whose anomaly controls the
        indicator's visibility in the simulation.
    driver_direction:
        ``-1`` when the indicator shows under *negative* anomalies of the
        driver (dry conditions), ``+1`` for positive anomalies.
    baseline_activity:
        Probability of a (false-positive) sighting under neutral conditions.
    """

    key: str
    label: str
    category: str
    implies: str
    reliability: float
    lead_time_days: float
    driver: str
    driver_direction: int
    baseline_activity: float = 0.05

    def __post_init__(self) -> None:
        if self.implies not in ("drier", "wetter"):
            raise ValueError("implies must be 'drier' or 'wetter'")
        if not 0.0 <= self.reliability <= 1.0:
            raise ValueError("reliability must be within [0, 1]")


#: Reference indicator catalogue for the Free State scenario.
INDICATOR_CATALOGUE: Dict[str, IndicatorDefinition] = {
    definition.key: definition
    for definition in [
        IndicatorDefinition(
            key="sifennefene_worms",
            label="Abundance of sifennefene worms",
            category="insect",
            implies="drier",
            reliability=0.72,
            lead_time_days=45.0,
            driver="soil_moisture",
            driver_direction=-1,
        ),
        IndicatorDefinition(
            key="mutiga_tree_flowering",
            label="Heavy flowering of the mutiga tree",
            category="plant",
            implies="drier",
            reliability=0.68,
            lead_time_days=60.0,
            driver="rainfall",
            driver_direction=-1,
        ),
        IndicatorDefinition(
            key="umtiza_leaf_shedding",
            label="Early leaf shedding of umtiza trees",
            category="plant",
            implies="drier",
            reliability=0.64,
            lead_time_days=50.0,
            driver="soil_moisture",
            driver_direction=-1,
        ),
        IndicatorDefinition(
            key="aloe_profuse_bloom",
            label="Profuse blooming of aloes",
            category="plant",
            implies="drier",
            reliability=0.60,
            lead_time_days=40.0,
            driver="rainfall",
            driver_direction=-1,
        ),
        IndicatorDefinition(
            key="stork_early_departure",
            label="Early departure of storks and swallows",
            category="animal",
            implies="drier",
            reliability=0.58,
            lead_time_days=35.0,
            driver="air_temperature",
            driver_direction=1,
        ),
        IndicatorDefinition(
            key="ants_moving_high",
            label="Ants moving nests to higher ground",
            category="insect",
            implies="wetter",
            reliability=0.62,
            lead_time_days=20.0,
            driver="rainfall",
            driver_direction=1,
        ),
        IndicatorDefinition(
            key="frogs_calling",
            label="Night-long frog choruses near pans",
            category="animal",
            implies="wetter",
            reliability=0.66,
            lead_time_days=15.0,
            driver="rainfall",
            driver_direction=1,
        ),
        IndicatorDefinition(
            key="haze_over_maluti",
            label="Persistent dry haze over the Maluti mountains",
            category="meteorological",
            implies="drier",
            reliability=0.55,
            lead_time_days=30.0,
            driver="relative_humidity",
            driver_direction=-1,
        ),
        IndicatorDefinition(
            key="moon_halo",
            label="Halo around the moon",
            category="astronomical",
            implies="wetter",
            reliability=0.45,
            lead_time_days=10.0,
            driver="relative_humidity",
            driver_direction=1,
        ),
        IndicatorDefinition(
            key="whirlwinds_frequent",
            label="Frequent dust whirlwinds at midday",
            category="meteorological",
            implies="drier",
            reliability=0.57,
            lead_time_days=25.0,
            driver="soil_moisture",
            driver_direction=-1,
        ),
        IndicatorDefinition(
            key="springs_receding",
            label="Mountain springs receding early in the season",
            category="hydrological",
            implies="drier",
            reliability=0.74,
            lead_time_days=55.0,
            driver="water_level",
            driver_direction=-1,
        ),
        IndicatorDefinition(
            key="cattle_restless",
            label="Cattle restless and grazing at night",
            category="animal",
            implies="drier",
            reliability=0.52,
            lead_time_days=20.0,
            driver="air_temperature",
            driver_direction=1,
        ),
    ]
}

#: Typical climatological normals used to convert absolute driver values
#: into anomalies for the activity model.
_DRIVER_NORMALS: Dict[str, Tuple[float, float]] = {
    # property -> (normal value, anomaly scale)
    "soil_moisture": (22.0, 8.0),
    "rainfall": (1.8, 1.5),
    "air_temperature": (24.0, 4.0),
    "relative_humidity": (55.0, 15.0),
    "water_level": (2500.0, 800.0),
    "vegetation_index": (0.45, 0.15),
}


class IndicatorActivityModel:
    """Probability that an indicator is observable, given the environment.

    The probability is a logistic function of the driver property's anomaly
    in the indicator's preferred direction, scaled so that under strongly
    anomalous conditions the sighting probability approaches
    ``reliability`` and under neutral/opposite conditions it approaches the
    ``baseline_activity`` (false sightings still happen -- IK forecasts have
    "an uncertain level of accuracy", which experiment E5 quantifies).

    ``reference`` supplies the *seasonal normal* the anomaly is taken
    against -- communities read their indicators relative to what is usual
    for the time of year, so a dry July (ordinary winter) does not trigger
    the dry-season indicators while a dry January (failed rains) does.
    Without a reference the fixed climatological normals in
    :data:`_DRIVER_NORMALS` are used.
    """

    #: Trailing window (days) and sample count over which the driver is
    #: averaged.  Indicators respond to the recent spell, not to a single
    #: day's weather (a lone shower does not silence the drought signs).
    smoothing_days: float = 21.0
    smoothing_samples: int = 7
    #: Years of the reference climate used to build the seasonal normal.
    climatology_years: int = 5
    #: Anomaly (in driver scales) at which activity reaches half of its span.
    activation_offset: float = 1.2

    def __init__(
        self,
        environment: EnvironmentModel,
        catalogue: Optional[Dict[str, IndicatorDefinition]] = None,
        sharpness: float = 2.0,
        reference: Optional[EnvironmentModel] = None,
    ):
        self.environment = environment
        self.catalogue = dict(catalogue or INDICATOR_CATALOGUE)
        self.sharpness = sharpness
        self.reference = reference
        # seasonal normals are cached per (driver, spatial cell): weather is
        # spatially variable, so each observer's anomaly must be taken
        # against the normal of their own location
        self._seasonal_normals: Dict[tuple, List[float]] = {}

    def _smoothed_value(self, model: EnvironmentModel, driver: str, location, timestamp: float) -> float:
        step = self.smoothing_days * DAY / self.smoothing_samples
        earliest = max(0.0, timestamp - self.smoothing_days * DAY)
        samples = []
        t = timestamp
        while t >= earliest and len(samples) < self.smoothing_samples:
            samples.append(model.true_value(driver, location, t))
            t -= step
        return sum(samples) / len(samples)

    def _seasonal_normal(self, driver: str, location, timestamp: float) -> float:
        """Day-of-year climatological normal of the driver from the reference.

        Built lazily, once per driver, by averaging the reference climate
        over several years at a representative location -- comparing against
        an expected seasonal value rather than against another single noisy
        realisation.
        """
        cell = (round(location[0] * 5), round(location[1] * 5))
        cache_key = (driver, cell)
        normals = self._seasonal_normals.get(cache_key)
        if normals is None:
            years = self.climatology_years
            daily = [
                self.reference.true_value(driver, location, d * DAY + DAY / 2)
                for d in range(365 * years)
            ]
            normals = []
            for doy in range(365):
                values = [daily[doy + 365 * year] for year in range(years)]
                normals.append(sum(values) / len(values))
            # smooth over +/- 7 days
            smoothed = []
            for doy in range(365):
                window = [normals[(doy + offset) % 365] for offset in range(-7, 8)]
                smoothed.append(sum(window) / len(window))
            normals = smoothed
            self._seasonal_normals[cache_key] = normals
        doy = int(timestamp / DAY) % 365
        return normals[doy]

    def anomaly(self, definition: IndicatorDefinition, location, timestamp: float) -> float:
        """Signed, scaled anomaly of the indicator's driver property.

        The driver is averaged over the trailing ``smoothing_days`` so the
        anomaly reflects the recent spell rather than one day's weather, and
        is taken relative to the seasonal normal when a reference climate is
        available.
        """
        normal, scale = _DRIVER_NORMALS.get(definition.driver, (0.0, 1.0))
        if self.reference is not None:
            normal = self._seasonal_normal(definition.driver, location, timestamp)
        value = self._smoothed_value(self.environment, definition.driver, location, timestamp)
        return (value - normal) / scale

    def _faithfulness(self, indicator_key: str, location, season_index: int) -> str:
        """Whether the indicator tracks conditions this season at this place.

        Deterministic per (indicator, season, cell).  With probability
        ``reliability`` the indicator is *faithful* (its visibility follows
        the driver anomaly); the remaining seasons split evenly between
        *silent* (it fails to show even under anomalous conditions) and
        *spurious* (it shows regardless).  These season-level failures are
        shared by every observer in the area -- which is exactly why IK-only
        forecasts carry the "uncertain level of accuracy" the paper
        describes: the whole community reads the same misleading sign.
        """
        definition = self.catalogue[indicator_key]
        cell = (round(location[0] * 5), round(location[1] * 5))
        key = f"faith:{indicator_key}:{season_index}:{cell}".encode()
        import hashlib

        digest = hashlib.blake2b(key, digest_size=8).digest()
        draw = int.from_bytes(digest, "big") / float(2**64)
        if draw < definition.reliability:
            return "faithful"
        if draw < definition.reliability + (1.0 - definition.reliability) / 2.0:
            return "silent"
        return "spurious"

    def activity(self, indicator_key: str, location, timestamp: float) -> float:
        """Sighting probability for the indicator at ``location`` / ``timestamp``.

        The paper's premise (and the IK literature it cites) is that the
        indicators carry *predictive* signal: the worms, trees and springs
        respond to cues that precede the instrumental drought signal.  The
        simulation grants each indicator that anticipation by evaluating its
        driver anomaly part of its stated lead time into the future.  The
        indicator's ``reliability`` controls season-level faithfulness (see
        :meth:`_faithfulness`), which is what makes IK-only forecasting
        genuinely uncertain rather than merely noisy.
        """
        definition = self.catalogue.get(indicator_key)
        if definition is None:
            return 0.0
        anticipation = definition.lead_time_days * DAY
        target_time = timestamp + anticipation
        season_index = int(target_time / (182.5 * DAY))
        mode = self._faithfulness(indicator_key, location, season_index)
        span = definition.reliability - definition.baseline_activity
        if mode == "silent":
            return definition.baseline_activity
        if mode == "spurious":
            return definition.baseline_activity + 0.75 * span
        anomaly = self.anomaly(definition, location, target_time)
        aligned = anomaly * definition.driver_direction
        logistic = 1.0 / (
            1.0 + math.exp(-self.sharpness * (aligned - self.activation_offset))
        )
        return definition.baseline_activity + span * logistic

    def __call__(self, indicator_key: str, location, timestamp: float) -> float:
        return self.activity(indicator_key, location, timestamp)


def indicators_implying(condition: str, catalogue: Optional[Dict[str, IndicatorDefinition]] = None) -> List[IndicatorDefinition]:
    """All catalogue indicators implying ``condition`` ('drier' or 'wetter')."""
    source = catalogue or INDICATOR_CATALOGUE
    return [d for d in source.values() if d.implies == condition]
