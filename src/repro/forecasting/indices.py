"""Drought indices.

Scalar summaries of moisture conditions computed from daily series, used by
the statistical baseline forecaster and reported by the DEWS:

* **SPI** -- Standardized Precipitation Index: rainfall accumulated over a
  window, transformed through a fitted gamma distribution to a standard
  normal deviate (McKee et al., 1993).  Negative SPI means drier than the
  reference climatology.
* **Percent of normal** and **deciles** -- simpler operational indices.
* **EDI-style effective precipitation** -- exponentially-decayed accumulation
  giving more weight to recent rain.
* **Soil-moisture anomaly** -- standardised anomaly of a soil moisture
  series against its own climatology.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import stats


def _rolling_sum(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing rolling sum; positions with fewer than ``window`` samples are NaN."""
    values = np.asarray(values, dtype=float)
    if window <= 0:
        raise ValueError("window must be positive")
    cumulative = np.cumsum(np.insert(values, 0, 0.0))
    sums = np.full(values.shape, np.nan)
    if len(values) >= window:
        sums[window - 1:] = cumulative[window:] - cumulative[:-window]
    return sums


def _spi_transform(accumulated: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Transform accumulations to SPI deviates against a reference sample."""
    spi = np.full(accumulated.shape, np.nan)
    valid_reference = reference[~np.isnan(reference)]
    defined = ~np.isnan(accumulated)
    if valid_reference.size < 5 or not defined.any():
        return spi
    # Gamma distributions are undefined at zero; handle zero accumulations
    # with the mixed distribution H(x) = q + (1 - q) G(x).
    zero_fraction = float(np.mean(valid_reference <= 0.0))
    positive = valid_reference[valid_reference > 0.0]
    acc_defined = accumulated[defined]
    if positive.size < 5 or float(np.std(positive)) == 0.0:
        # degenerate climatology: fall back to a plain standardised anomaly
        mean = float(np.mean(valid_reference))
        std = float(np.std(valid_reference)) or 1.0
        spi[defined] = (acc_defined - mean) / std
        return spi
    shape, _, scale = stats.gamma.fit(positive, floc=0.0)
    gamma_cdf = stats.gamma.cdf(np.clip(acc_defined, 1e-9, None), shape, loc=0.0, scale=scale)
    probabilities = zero_fraction + (1.0 - zero_fraction) * gamma_cdf
    probabilities = np.clip(probabilities, 1e-4, 1.0 - 1e-4)
    spi[defined] = stats.norm.ppf(probabilities)
    return spi


def standardized_precipitation_index(
    rainfall: Sequence[float],
    window_days: int = 30,
    reference: Optional[Sequence[float]] = None,
    seasonal_bins: int = 12,
) -> np.ndarray:
    """SPI of a daily rainfall series.

    Parameters
    ----------
    rainfall:
        Daily rainfall depths (mm).
    window_days:
        Accumulation window (30 for SPI-1, 90 for SPI-3, ...).
    reference:
        Optional reference climatology series (daily rainfall, ideally
        several drought-free years).  Defaults to the input series itself.
    seasonal_bins:
        Number of calendar bins the climatology is fitted in.  Proper SPI is
        seasonally relative (a dry winter month is not a drought); both the
        target and the reference series are assumed to start on the same
        calendar day, and days are binned modulo 365.  Use ``1`` to disable
        seasonal fitting.

    Returns
    -------
    numpy.ndarray
        SPI value per day; the first ``window_days - 1`` entries are NaN.
    """
    rainfall = np.asarray(rainfall, dtype=float)
    accumulated = _rolling_sum(rainfall, window_days)
    reference_acc = (
        _rolling_sum(np.asarray(reference, dtype=float), window_days)
        if reference is not None
        else accumulated
    )
    if reference_acc[~np.isnan(reference_acc)].size < 10:
        raise ValueError("not enough data to fit the SPI climatology")

    if seasonal_bins <= 1:
        return _spi_transform(accumulated, reference_acc)

    spi = np.full(accumulated.shape, np.nan)
    target_bins = (np.arange(len(accumulated)) % 365) * seasonal_bins // 365
    reference_bins = (np.arange(len(reference_acc)) % 365) * seasonal_bins // 365
    for bin_index in range(seasonal_bins):
        target_mask = target_bins == bin_index
        if not target_mask.any():
            continue
        reference_sample = reference_acc[reference_bins == bin_index]
        reference_sample = reference_sample[~np.isnan(reference_sample)]
        if reference_sample.size < 5:
            reference_sample = reference_acc[~np.isnan(reference_acc)]
        spi[target_mask] = _spi_transform(accumulated[target_mask], reference_sample)
    return spi


def percent_of_normal(
    rainfall: Sequence[float], window_days: int = 30, reference: Optional[Sequence[float]] = None
) -> np.ndarray:
    """Accumulated rainfall as a percentage of the climatological normal."""
    rainfall = np.asarray(rainfall, dtype=float)
    accumulated = _rolling_sum(rainfall, window_days)
    reference_acc = (
        _rolling_sum(np.asarray(reference, dtype=float), window_days)
        if reference is not None
        else accumulated
    )
    normal = float(np.nanmean(reference_acc))
    if normal <= 0:
        return np.full(accumulated.shape, np.nan)
    return 100.0 * accumulated / normal


def deciles_index(
    rainfall: Sequence[float], window_days: int = 30, reference: Optional[Sequence[float]] = None
) -> np.ndarray:
    """Decile rank (1-10) of the accumulated rainfall against climatology."""
    rainfall = np.asarray(rainfall, dtype=float)
    accumulated = _rolling_sum(rainfall, window_days)
    reference_acc = (
        _rolling_sum(np.asarray(reference, dtype=float), window_days)
        if reference is not None
        else accumulated
    )
    valid = reference_acc[~np.isnan(reference_acc)]
    edges = np.percentile(valid, np.arange(10, 100, 10))
    deciles = np.full(accumulated.shape, np.nan)
    defined = ~np.isnan(accumulated)
    deciles[defined] = 1 + np.searchsorted(edges, accumulated[defined])
    return deciles


def effective_drought_index(rainfall: Sequence[float], memory_days: int = 365) -> np.ndarray:
    """EDI-style effective precipitation anomaly.

    Effective precipitation gives geometrically decaying weight to earlier
    days; its standardised anomaly behaves like the EDI of Byun & Wilhite.
    """
    rainfall = np.asarray(rainfall, dtype=float)
    weights = 1.0 / np.arange(1, memory_days + 1)
    effective = np.full(rainfall.shape, np.nan)
    for index in range(len(rainfall)):
        start = max(0, index - memory_days + 1)
        window = rainfall[start: index + 1][::-1]
        effective[index] = float(np.sum(window * weights[: len(window)]))
    mean = float(np.nanmean(effective))
    std = float(np.nanstd(effective))
    if std == 0:
        return np.zeros_like(effective)
    return (effective - mean) / std


def _trailing_mean(values: np.ndarray, window: int) -> np.ndarray:
    """Causal trailing mean: position ``i`` averages ``values[i-window+1 : i+1]``.

    Early positions average over however many samples exist, so there is no
    zero-padding bias at either end (forecasts read the *last* element).
    """
    values = np.asarray(values, dtype=float)
    cumulative = np.cumsum(np.insert(np.nan_to_num(values, nan=0.0), 0, 0.0))
    counts = np.cumsum(np.insert((~np.isnan(values)).astype(float), 0, 0.0))
    result = np.empty(values.shape)
    for index in range(len(values)):
        start = max(0, index - window + 1)
        total = cumulative[index + 1] - cumulative[start]
        count = counts[index + 1] - counts[start]
        result[index] = total / count if count > 0 else np.nan
    return result


def soil_moisture_anomaly(
    soil_moisture: Sequence[float],
    window_days: int = 14,
    reference: Optional[Sequence[float]] = None,
    seasonal_bins: int = 12,
) -> np.ndarray:
    """Standardised (seasonally relative) anomaly of a soil-moisture series.

    ``reference`` provides the climatology; without it the series is its own
    reference.  As with SPI, both series are assumed to start on the same
    calendar day and are binned modulo 365 into ``seasonal_bins`` bins.
    Smoothing is a causal trailing mean so the most recent value -- the one
    an operational forecast reads -- is not biased by edge padding.
    """
    soil = np.asarray(soil_moisture, dtype=float)
    if soil.size == 0:
        return soil
    smoothed = _trailing_mean(soil, window_days)
    reference_series = (
        _trailing_mean(np.asarray(reference, dtype=float), window_days)
        if reference is not None
        else smoothed
    )
    anomaly = np.full(smoothed.shape, np.nan)
    bins = max(1, seasonal_bins)
    target_bins = (np.arange(len(smoothed)) % 365) * bins // 365
    reference_bins = (np.arange(len(reference_series)) % 365) * bins // 365
    for bin_index in range(bins):
        mask = target_bins == bin_index
        if not mask.any():
            continue
        sample = reference_series[reference_bins == bin_index]
        sample = sample[~np.isnan(sample)]
        if sample.size < 3:
            sample = reference_series[~np.isnan(reference_series)]
        mean = float(np.mean(sample))
        std = float(np.std(sample))
        anomaly[mask] = 0.0 if std == 0 else (smoothed[mask] - mean) / std
    return anomaly


def vegetation_condition_index(ndvi: Sequence[float]) -> np.ndarray:
    """VCI: NDVI scaled between its historical minimum and maximum (0-100)."""
    values = np.asarray(ndvi, dtype=float)
    low, high = float(np.min(values)), float(np.max(values))
    if high - low <= 0:
        return np.full(values.shape, 50.0)
    return 100.0 * (values - low) / (high - low)
