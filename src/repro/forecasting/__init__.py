"""Drought forecasting layer.

Three forecasters are compared by the accuracy experiments (E4, E9):

* :class:`~repro.forecasting.statistical.StatisticalForecaster` -- the
  paper's characterisation of current practice: "most drought
  predicting/forecasting system is based on statistical model using data
  from weather stations and WSNs data only".  It thresholds drought indices
  (SPI, soil-moisture anomaly) computed from the sensor streams.
* :class:`~repro.forecasting.fusion.IndigenousForecaster` -- forecasts from
  IK indicator sightings only, quantifying the "uncertain level of
  accuracy" of pure IKF that motivates the paper.
* :class:`~repro.forecasting.fusion.FusionForecaster` -- the paper's
  proposal: semantically integrated sensor evidence (CEP-derived process
  events) combined with IK-derived indications.

Skill metrics live in :mod:`repro.forecasting.evaluation`, drought indices
in :mod:`repro.forecasting.indices`, and the district-level drought
vulnerability index in :mod:`repro.forecasting.vulnerability`.
"""

from repro.forecasting.indices import (
    deciles_index,
    effective_drought_index,
    percent_of_normal,
    soil_moisture_anomaly,
    standardized_precipitation_index,
)
from repro.forecasting.statistical import StatisticalForecaster
from repro.forecasting.fusion import Forecast, FusionForecaster, IndigenousForecaster
from repro.forecasting.evaluation import ForecastSkill, evaluate_forecasts
from repro.forecasting.vulnerability import VulnerabilityIndex, compute_vulnerability

__all__ = [
    "standardized_precipitation_index",
    "effective_drought_index",
    "percent_of_normal",
    "deciles_index",
    "soil_moisture_anomaly",
    "StatisticalForecaster",
    "IndigenousForecaster",
    "FusionForecaster",
    "Forecast",
    "ForecastSkill",
    "evaluate_forecasts",
    "VulnerabilityIndex",
    "compute_vulnerability",
]
