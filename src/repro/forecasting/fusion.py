"""Forecast objects, the IK-only forecaster and the fusion forecaster.

The fusion forecaster is the payoff of the paper's architecture: CEP-derived
process events (from semantically integrated sensor streams) and IK-derived
indications are combined into a single drought probability per area and
issue day.  Sensor-side evidence establishes that deficit *processes* are
under way; IK evidence extends the lead time (indicators typically precede
instrumental signals) and corroborates or contradicts the sensor picture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cep.event import DerivedEvent
from repro.ik.knowledge_base import IndigenousKnowledgeBase
from repro.ik.rules import CONTRA_EVIDENCE_WEIGHTS, DROUGHT_EVIDENCE_WEIGHTS
from repro.streams.scheduler import DAY


@dataclass
class Forecast:
    """One issued drought forecast.

    ``drought_probability`` is the probability that drought conditions hold
    in the target window (``issue_day + lead_time_days`` onwards);
    ``confidence`` reflects how much evidence supported the forecast.
    """

    issue_day: float
    lead_time_days: float
    drought_probability: float
    confidence: float
    method: str
    area: str = "unknown"
    evidence: Dict[str, float] = field(default_factory=dict)

    @property
    def target_day(self) -> float:
        """The day the forecast is about."""
        return self.issue_day + self.lead_time_days

    def predicts_drought(self, threshold: float = 0.5) -> bool:
        """Whether the forecast calls a drought at the given threshold."""
        return self.drought_probability >= threshold


def _decayed_weight(event_age_days: float, half_life_days: float) -> float:
    """Exponential decay of evidence weight with age."""
    return 0.5 ** (event_age_days / max(1e-9, half_life_days))


class IndigenousForecaster:
    """Forecasts from IK indicator sightings only.

    Aggregates the knowledge base's sighting evidence over a trailing
    window; the net drier-vs-wetter evidence maps to a drought probability.
    Used stand-alone to quantify IK-only reliability (experiment E5) and as
    the IK arm of the fusion forecaster.
    """

    def __init__(
        self,
        knowledge_base: IndigenousKnowledgeBase,
        window_days: float = 45.0,
        sensitivity: float = 2.2,
        net_midpoint: float = 0.28,
    ):
        self.knowledge_base = knowledge_base
        self.window_days = window_days
        self.sensitivity = sensitivity
        self.net_midpoint = net_midpoint

    def drought_probability_at(self, day: float) -> Dict[str, float]:
        """Aggregate IK evidence in the trailing window ending at ``day``."""
        start = (day - self.window_days) * DAY
        end = day * DAY
        aggregate = self.knowledge_base.aggregate(start, end)
        net = aggregate.get("net_drier", 0.0)
        probability = 1.0 / (
            1.0 + math.exp(-self.sensitivity * 2.0 * (net - self.net_midpoint))
        )
        return {
            "probability": probability,
            "net_drier": net,
            "drier": aggregate.get("drier", 0.0),
            "wetter": aggregate.get("wetter", 0.0),
        }

    def forecast_series(
        self,
        days: int,
        area: str = "unknown",
        issue_every_days: int = 10,
        start_day: int = 30,
    ) -> List[Forecast]:
        """Issue IK-only forecasts along the scenario timeline."""
        lead = self.knowledge_base.mean_lead_time("drier") or 30.0
        forecasts: List[Forecast] = []
        for day in range(start_day, days, issue_every_days):
            summary = self.drought_probability_at(float(day))
            evidence_mass = summary["drier"] + summary["wetter"]
            confidence = min(1.0, 0.25 + 0.75 * evidence_mass)
            forecasts.append(
                Forecast(
                    issue_day=float(day),
                    lead_time_days=lead,
                    drought_probability=summary["probability"],
                    confidence=confidence,
                    method="indigenous",
                    area=area,
                    evidence={
                        "net_drier": summary["net_drier"],
                        "drier": summary["drier"],
                        "wetter": summary["wetter"],
                    },
                )
            )
        return forecasts


class FusionForecaster:
    """The paper's integrated forecaster: CEP process events + IK evidence.

    Parameters
    ----------
    knowledge_base:
        The community knowledge base (for IK evidence and lead times).
    evidence_half_life_days:
        Age at which a derived event's contribution halves.
    evidence_weights / contra_weights:
        Per-derived-event-type weights; default to the IK module's tables.
    sensitivity:
        Steepness of the logistic mapping from net evidence to probability.
    """

    def __init__(
        self,
        knowledge_base: IndigenousKnowledgeBase,
        evidence_half_life_days: float = 21.0,
        evidence_weights: Optional[Dict[str, float]] = None,
        contra_weights: Optional[Dict[str, float]] = None,
        sensitivity: float = 1.2,
        evidence_midpoint: float = 2.4,
    ):
        self.knowledge_base = knowledge_base
        self.evidence_half_life_days = evidence_half_life_days
        self.evidence_weights = dict(evidence_weights or DROUGHT_EVIDENCE_WEIGHTS)
        self.contra_weights = dict(contra_weights or CONTRA_EVIDENCE_WEIGHTS)
        self.sensitivity = sensitivity
        self.evidence_midpoint = evidence_midpoint
        self._events: List[DerivedEvent] = []

    # ------------------------------------------------------------------ #
    # evidence intake
    # ------------------------------------------------------------------ #

    def observe(self, event: DerivedEvent) -> None:
        """Register a derived event from the CEP engine."""
        self._events.append(event)

    def observe_many(self, events: Iterable[DerivedEvent]) -> None:
        """Register several derived events."""
        for event in events:
            self.observe(event)

    def clear(self) -> None:
        """Forget all registered evidence (between scenario runs)."""
        self._events.clear()

    # ------------------------------------------------------------------ #
    # forecasting
    # ------------------------------------------------------------------ #

    #: Fraction of the IK evidence trusted when nothing corroborates it;
    #: rises to 1.0 with corroboration from either (a) sensor-side deficit
    #: processes or (b) diversity of the IK signal itself (several distinct
    #: indicators reported independently).
    uncorroborated_ik_trust: float = 0.35
    corroboration_scale: float = 1.5
    #: Number of distinct drought-implying IK indicator rules that counts as
    #: a fully corroborated community signal.
    ik_diversity_scale: int = 4

    def _evidence_at(self, day: float, area: Optional[str]) -> Dict[str, float]:
        """Decayed, weighted evidence per derived-event type at ``day``.

        Sensor-derived and IK-derived support are kept separate so the
        probability mapping can require corroboration: IK indications alone
        are partially trusted (they provide the early lead), but their full
        weight is only granted once instrumental deficit processes start
        confirming them -- this is the concrete payoff of *integrating* the
        two knowledge sources rather than using either alone.
        """
        now = day * DAY
        # evidence is capped per rule: the strongest (most recent) firing of
        # each rule counts, so a rule re-firing every cooldown period does
        # not accumulate unbounded weight
        support_by_rule: Dict[str, float] = {}
        contra_by_rule: Dict[str, float] = {}
        rule_is_ik: Dict[str, bool] = {}
        per_type: Dict[str, float] = {}
        for event in self._events:
            if event.timestamp > now:
                continue
            if area is not None and event.area is not None and event.area != area:
                continue
            age_days = (now - event.timestamp) / DAY
            if age_days > 4 * self.evidence_half_life_days:
                continue
            decay = _decayed_weight(age_days, self.evidence_half_life_days)
            rule_weight = float(event.attributes.get("rule_weight", 1.0))
            rule_name = getattr(event, "rule_name", None) or event.source_id
            contribution = event.value * decay * rule_weight
            if event.event_type in self.evidence_weights:
                weighted = contribution * self.evidence_weights[event.event_type]
                support_by_rule[rule_name] = max(
                    support_by_rule.get(rule_name, 0.0), weighted
                )
                rule_is_ik[rule_name] = event.event_type.startswith("ik_")
                per_type[event.event_type] = max(
                    per_type.get(event.event_type, 0.0), weighted
                )
            elif event.event_type in self.contra_weights:
                weighted = contribution * self.contra_weights[event.event_type]
                contra_by_rule[rule_name] = max(
                    contra_by_rule.get(rule_name, 0.0), weighted
                )
        sensor_support = sum(
            value for rule, value in support_by_rule.items() if not rule_is_ik.get(rule)
        )
        ik_support = sum(
            value for rule, value in support_by_rule.items() if rule_is_ik.get(rule)
        )
        ik_dry_rules = {rule for rule, is_ik in rule_is_ik.items() if is_ik}
        per_type["sensor_support"] = sensor_support
        per_type["ik_support"] = ik_support
        per_type["ik_distinct_indicators"] = float(len(ik_dry_rules))
        per_type["supporting"] = sensor_support + ik_support
        per_type["contradicting"] = sum(contra_by_rule.values())
        return per_type

    def drought_probability_at(self, day: float, area: Optional[str] = None) -> float:
        """The fused drought probability at ``day`` for ``area``.

        IK evidence is corroborated either by sensor-side deficit processes
        or by its own diversity (many distinct indicators reported
        independently); uncorroborated IK -- the single spurious sign a whole
        community can latch onto -- is discounted.
        """
        evidence = self._evidence_at(day, area)
        sensor_corroboration = min(
            1.0, evidence["sensor_support"] / self.corroboration_scale
        )
        diversity_corroboration = min(
            1.0, evidence["ik_distinct_indicators"] / float(self.ik_diversity_scale)
        )
        # sensor corroboration is what unlocks full trust in the IK signal;
        # IK diversity alone raises trust only half-way (a whole community
        # can still latch onto a spurious season of several signs at once)
        corroboration = max(sensor_corroboration, 0.5 * diversity_corroboration)
        ik_trust = (
            self.uncorroborated_ik_trust
            + (1.0 - self.uncorroborated_ik_trust) * corroboration
        )
        net = (
            evidence["sensor_support"]
            + ik_trust * evidence["ik_support"]
            - evidence["contradicting"]
        )
        return 1.0 / (
            1.0 + math.exp(-self.sensitivity * (net - self.evidence_midpoint))
        )

    def forecast_series(
        self,
        days: int,
        area: str = "unknown",
        issue_every_days: int = 10,
        start_day: int = 30,
        lead_time_days: Optional[float] = None,
    ) -> List[Forecast]:
        """Issue integrated forecasts along the scenario timeline."""
        if lead_time_days is None:
            # IK indicators lead the instrumental signal; the fusion
            # forecast inherits part of that lead.
            lead_time_days = max(10.0, 0.5 * self.knowledge_base.mean_lead_time("drier"))
        forecasts: List[Forecast] = []
        for day in range(start_day, days, issue_every_days):
            evidence = self._evidence_at(float(day), area)
            probability = self.drought_probability_at(float(day), area)
            evidence_mass = evidence["supporting"] + evidence["contradicting"]
            confidence = min(1.0, 0.3 + 0.2 * evidence_mass)
            forecasts.append(
                Forecast(
                    issue_day=float(day),
                    lead_time_days=lead_time_days,
                    drought_probability=probability,
                    confidence=confidence,
                    method="fusion",
                    area=area,
                    evidence={k: round(v, 4) for k, v in evidence.items()},
                )
            )
        return forecasts
