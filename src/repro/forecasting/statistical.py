"""The statistical sensors-only baseline forecaster.

Represents the status quo the paper contrasts with: drought forecasts
driven purely by statistical indices over station / WSN data, with no
semantic integration and no indigenous knowledge.  The forecaster computes
SPI and soil-moisture anomaly from the (possibly gappy) daily series that
reached the cloud, combines them into a drought probability through a
logistic link, and issues a forecast per evaluation day.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.forecasting.fusion import Forecast
from repro.forecasting.indices import soil_moisture_anomaly, standardized_precipitation_index


@dataclass
class StatisticalForecasterConfig:
    """Tunable parameters of the baseline (defaults follow common practice)."""

    spi_window_days: int = 30
    spi_weight: float = 1.2
    soil_weight: float = 0.8
    bias: float = -0.2
    #: SPI value at which drought probability reaches 0.5 when soil anomaly is 0.
    spi_midpoint: float = -0.8
    soil_midpoint: float = -0.7


class StatisticalForecaster:
    """Sensors-only drought forecaster (the paper's baseline).

    The forecaster is *stateless across days*: each call to
    :meth:`forecast_series` maps index values to probabilities.  Missing
    observations (NaNs in the input series) propagate as lower-confidence
    forecasts, which is how sensor outages hurt the baseline in E8.
    """

    def __init__(self, config: Optional[StatisticalForecasterConfig] = None):
        self.config = config or StatisticalForecasterConfig()

    def drought_probability(self, spi: float, soil_anomaly: float) -> float:
        """Combine index values into a drought probability."""
        config = self.config
        score = config.bias
        if not math.isnan(spi):
            score += config.spi_weight * (config.spi_midpoint - spi)
        if not math.isnan(soil_anomaly):
            score += config.soil_weight * (config.soil_midpoint - soil_anomaly)
        return 1.0 / (1.0 + math.exp(-score))

    def forecast_series(
        self,
        rainfall: Sequence[float],
        soil_moisture: Optional[Sequence[float]] = None,
        area: str = "unknown",
        issue_every_days: int = 10,
        lead_time_days: float = 10.0,
        reference_rainfall: Optional[Sequence[float]] = None,
        reference_soil_moisture: Optional[Sequence[float]] = None,
    ) -> List[Forecast]:
        """Issue forecasts along a daily series.

        Parameters
        ----------
        rainfall / soil_moisture:
            Daily series as observed by the sensing system (may contain
            NaNs for days with no delivered observations).
        issue_every_days:
            A forecast is issued every this-many days (operational cadence).
        lead_time_days:
            The lead time attached to each forecast: the forecast at day
            ``d`` predicts conditions around day ``d + lead_time_days``.
        reference_rainfall / reference_soil_moisture:
            Optional multi-year climatology series (drought-free) against
            which the indices are standardised; operational SPI uses a
            30-year normal, so benchmarks pass a long synthetic normal here.
        """
        rainfall = np.asarray(rainfall, dtype=float)
        spi = standardized_precipitation_index(
            np.nan_to_num(rainfall, nan=0.0),
            self.config.spi_window_days,
            reference=reference_rainfall,
        )
        if soil_moisture is not None:
            soil_series = np.asarray(soil_moisture, dtype=float)
            filled = np.where(
                np.isnan(soil_series), np.nanmean(soil_series), soil_series
            )
            soil_anom = soil_moisture_anomaly(filled, reference=reference_soil_moisture)
        else:
            soil_anom = np.full(rainfall.shape, np.nan)

        forecasts: List[Forecast] = []
        for day in range(self.config.spi_window_days, len(rainfall), issue_every_days):
            probability = self.drought_probability(float(spi[day]), float(soil_anom[day]))
            missing_fraction = float(np.mean(np.isnan(rainfall[max(0, day - 30): day + 1])))
            confidence = max(0.1, 1.0 - missing_fraction)
            forecasts.append(
                Forecast(
                    issue_day=float(day),
                    lead_time_days=lead_time_days,
                    drought_probability=probability,
                    confidence=confidence,
                    method="statistical",
                    area=area,
                    evidence={"spi": float(spi[day]), "soil_anomaly": float(soil_anom[day])},
                )
            )
        return forecasts
