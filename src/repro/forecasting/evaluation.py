"""Forecast skill evaluation.

Scores a sequence of :class:`~repro.forecasting.fusion.Forecast` objects
against the ground-truth drought mask of the synthetic climate, using the
categorical and probabilistic metrics standard in the early-warning
literature:

* POD (probability of detection / hit rate)
* FAR (false alarm ratio)
* CSI (critical success index / threat score)
* accuracy and frequency bias
* Brier score of the probabilistic forecasts
* mean warning lead time: how many days before the episode onset the first
  sustained drought call was issued (the quantity the paper cares most
  about -- "establish accurate drought development patterns as early as
  possible").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.forecasting.fusion import Forecast
from repro.workloads.climate import DroughtEpisode


@dataclass
class ForecastSkill:
    """Skill scores for one forecaster on one scenario."""

    method: str
    hits: int
    misses: int
    false_alarms: int
    correct_negatives: int
    brier_score: float
    mean_lead_time_days: float
    forecasts_evaluated: int

    @property
    def pod(self) -> float:
        """Probability of detection (hit rate)."""
        denominator = self.hits + self.misses
        return self.hits / denominator if denominator else 0.0

    @property
    def far(self) -> float:
        """False alarm ratio."""
        denominator = self.hits + self.false_alarms
        return self.false_alarms / denominator if denominator else 0.0

    @property
    def csi(self) -> float:
        """Critical success index (threat score)."""
        denominator = self.hits + self.misses + self.false_alarms
        return self.hits / denominator if denominator else 0.0

    @property
    def accuracy(self) -> float:
        """Fraction of forecasts that were correct."""
        total = self.hits + self.misses + self.false_alarms + self.correct_negatives
        return (self.hits + self.correct_negatives) / total if total else 0.0

    @property
    def bias(self) -> float:
        """Frequency bias (forecast yes / observed yes)."""
        observed = self.hits + self.misses
        forecast = self.hits + self.false_alarms
        return forecast / observed if observed else 0.0

    def as_row(self) -> Dict[str, float]:
        """The metrics as a flat dict for benchmark tables."""
        return {
            "method": self.method,
            "POD": round(self.pod, 3),
            "FAR": round(self.far, 3),
            "CSI": round(self.csi, 3),
            "accuracy": round(self.accuracy, 3),
            "bias": round(self.bias, 3),
            "brier": round(self.brier_score, 3),
            "lead_time_days": round(self.mean_lead_time_days, 1),
            "n_forecasts": self.forecasts_evaluated,
        }


def _truth_in_window(
    drought_mask: np.ndarray, target_day: float, tolerance_days: float
) -> Optional[bool]:
    """Whether drought holds around ``target_day`` (None when out of range)."""
    start = int(max(0, target_day - tolerance_days))
    end = int(min(len(drought_mask), target_day + tolerance_days + 1))
    if start >= len(drought_mask) or end <= start:
        return None
    return bool(drought_mask[start:end].any())


def _episode_lead_times(
    forecasts: Sequence[Forecast],
    episodes: Sequence[DroughtEpisode],
    threshold: float,
) -> List[float]:
    """Warning lead time per episode: onset day minus first preceding alarm."""
    lead_times: List[float] = []
    for episode in episodes:
        alarms = [
            f for f in forecasts
            if f.predicts_drought(threshold)
            and f.issue_day <= episode.start_day
            and f.issue_day >= episode.start_day - 120.0
        ]
        if not alarms:
            continue
        earliest = min(alarms, key=lambda f: f.issue_day)
        lead_times.append(episode.start_day - earliest.issue_day)
    return lead_times


def evaluate_forecasts(
    forecasts: Sequence[Forecast],
    drought_mask: Sequence[bool],
    episodes: Sequence[DroughtEpisode] = (),
    threshold: float = 0.5,
    tolerance_days: float = 7.0,
) -> ForecastSkill:
    """Score forecasts against the ground-truth daily drought mask.

    Each forecast is compared with the truth around its *target day*
    (issue day + lead time), within ``tolerance_days``.
    """
    mask = np.asarray(drought_mask, dtype=bool)
    hits = misses = false_alarms = correct_negatives = 0
    brier_terms: List[float] = []
    evaluated = 0
    method = forecasts[0].method if forecasts else "none"

    for forecast in forecasts:
        truth = _truth_in_window(mask, forecast.target_day, tolerance_days)
        if truth is None:
            continue
        evaluated += 1
        predicted = forecast.predicts_drought(threshold)
        brier_terms.append((forecast.drought_probability - (1.0 if truth else 0.0)) ** 2)
        if predicted and truth:
            hits += 1
        elif predicted and not truth:
            false_alarms += 1
        elif not predicted and truth:
            misses += 1
        else:
            correct_negatives += 1

    lead_times = _episode_lead_times(forecasts, episodes, threshold)
    return ForecastSkill(
        method=method,
        hits=hits,
        misses=misses,
        false_alarms=false_alarms,
        correct_negatives=correct_negatives,
        brier_score=float(np.mean(brier_terms)) if brier_terms else 1.0,
        mean_lead_time_days=float(np.mean(lead_times)) if lead_times else 0.0,
        forecasts_evaluated=evaluated,
    )


def skill_comparison_table(skills: Sequence[ForecastSkill]) -> List[Dict[str, float]]:
    """Rows (one per forecaster) for the E4 benchmark output."""
    return [skill.as_row() for skill in skills]
