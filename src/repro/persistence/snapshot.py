"""Checksummed point-in-time snapshots of one graph shard.

A snapshot is a compact, self-validating image of everything a shard needs
to come back: namespace bindings (CURIE resolution must survive a
restart), the optional graph identifier, the full term dictionary in id
order, and every triple as three varint ids.

File layout::

    [8 bytes magic "RPSNAP01"]
    [u32 crc32(body)] [u64 body length]      (little-endian)
    body:
        varint namespace-count, then (prefix, base) string pairs
        u8 has-identifier, then the identifier term if 1
        varint term-count, then the terms in id order
        varint triple-count, then 3 varints per triple
        [optional] varint view-count, then per view:
            name string, query-text string, varint base-count, per base:
                one bindings row (the base), varint row-count, the rows

View rows ride along so recovery can re-register standing views without
re-materializing them from the recovered graph.  Bindings rows are
encoded self-describingly (variable-name strings + full terms, *not*
dictionary ids): view rows hold decoded terms and must survive a rebuild
of the term dictionary.  The section is optional — snapshots written
before it existed simply end after the triples and decode with no views.

Writes are crash-atomic: the image is assembled in memory, written to a
``*.tmp`` sibling, fsynced, and :func:`os.replace`-d into place — a crash
mid-write leaves either the old snapshot or none, never a half-written
one.  Loads verify magic, length and checksum, and return ``None`` for
anything invalid so recovery can fall back to an older generation.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.persistence.codec import (
    decode_string,
    decode_term,
    decode_terms,
    encode_string,
    encode_term_into,
    read_uvarint,
    write_uvarint,
)
from repro.semantics.rdf.dictionary import TripleIds
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import Namespace, NamespaceManager
from repro.semantics.rdf.term import IRI, Term

_MAGIC = b"RPSNAP01"
_HEADER = struct.Struct("<IQ")  # crc32(body), body length


class SnapshotData:
    """The decoded contents of one snapshot file.

    ``views`` holds the optional view-rows section: ``(name, text,
    bases)`` tuples where ``bases`` maps each base solution to its full
    rows, ready to seed a
    :class:`~repro.semantics.sparql.views.StandingView`.
    """

    __slots__ = ("namespaces", "identifier", "terms", "triples", "views")

    def __init__(
        self,
        namespaces: List[Tuple[str, str]],
        identifier: Optional[Term],
        terms: List[Term],
        triples: List[TripleIds],
        views: Optional[list] = None,
    ):
        self.namespaces = namespaces
        self.identifier = identifier
        self.terms = terms
        self.triples = triples
        self.views = views if views is not None else []

    def __repr__(self) -> str:
        return (
            f"<SnapshotData {len(self.terms)} terms, {len(self.triples)} triples, "
            f"{len(self.views)} views>"
        )


def _encode_bindings_into(body: bytearray, row) -> None:
    body_pairs = list(row.items())
    write_uvarint(body, len(body_pairs))
    for var, term in body_pairs:
        encode_string(body, var.name)
        encode_term_into(body, term)


def _decode_bindings(body: bytes, offset: int):
    from repro.semantics.rdf.term import Variable
    from repro.semantics.sparql.bindings import bindings_from_mapping

    pair_count, offset = read_uvarint(body, offset)
    mapping = {}
    for _ in range(pair_count):
        name, offset = decode_string(body, offset)
        term, offset = decode_term(body, offset)
        mapping[Variable(name)] = term
    return bindings_from_mapping(mapping), offset


def _encode_body(graph: Graph, views: Optional[list] = None) -> bytearray:
    body = bytearray()
    bindings = list(graph.namespaces.bindings())
    write_uvarint(body, len(bindings))
    for prefix, namespace in bindings:
        encode_string(body, prefix)
        encode_string(body, namespace.base)
    if graph.identifier is not None:
        body.append(1)
        encode_term_into(body, graph.identifier)
    else:
        body.append(0)
    terms = graph.dictionary.terms
    write_uvarint(body, len(terms))
    for term in terms:
        encode_term_into(body, term)
    write_uvarint(body, len(graph))
    count = 0
    for s, p, o in graph.triples_ids():
        write_uvarint(body, s)
        write_uvarint(body, p)
        write_uvarint(body, o)
        count += 1
    if count != len(graph):
        raise RuntimeError("graph mutated while snapshotting")
    if views:
        write_uvarint(body, len(views))
        for name, text, bases in views:
            encode_string(body, name)
            encode_string(body, text)
            items = list(bases.items()) if hasattr(bases, "items") else list(bases)
            write_uvarint(body, len(items))
            for base, rows in items:
                _encode_bindings_into(body, base)
                write_uvarint(body, len(rows))
                for row in rows:
                    _encode_bindings_into(body, row)
    return body


def write_snapshot(graph: Graph, path: Union[str, Path], views: Optional[list] = None) -> int:
    """Atomically write a snapshot of ``graph`` to ``path``.

    ``views`` optionally carries the standing-view rows to persist, as
    ``(name, text, bases)`` tuples.  Returns the number of bytes written.
    The caller must ensure the graph is not mutated concurrently (the
    persistence manager snapshots between ingest batches, on the ingesting
    thread's schedule).
    """
    path = Path(path)
    body = _encode_body(graph, views=views)
    image = bytearray(_MAGIC)
    image += _HEADER.pack(zlib.crc32(body), len(body))
    image += body
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(image)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(image)


def load_snapshot(path: Union[str, Path]) -> Optional[SnapshotData]:
    """Read and validate a snapshot; ``None`` when missing or corrupt."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError:
        return None
    prefix = len(_MAGIC) + _HEADER.size
    if len(data) < prefix or data[: len(_MAGIC)] != _MAGIC:
        return None
    crc, length = _HEADER.unpack_from(data, len(_MAGIC))
    body = data[prefix : prefix + length]
    if len(body) != length or zlib.crc32(body) != crc:
        return None
    try:
        return _decode_body(body)
    except (ValueError, IndexError):
        return None


def _decode_body(body: bytes) -> SnapshotData:
    offset = 0
    namespace_count, offset = read_uvarint(body, offset)
    namespaces: List[Tuple[str, str]] = []
    for _ in range(namespace_count):
        prefix, offset = decode_string(body, offset)
        base, offset = decode_string(body, offset)
        namespaces.append((prefix, base))
    has_identifier = body[offset]
    offset += 1
    identifier: Optional[Term] = None
    if has_identifier:
        identifier, offset = decode_term(body, offset)
    term_count, offset = read_uvarint(body, offset)
    terms, offset = decode_terms(body, offset, term_count)
    triple_count, offset = read_uvarint(body, offset)
    triples: List[TripleIds] = []
    for _ in range(triple_count):
        s, offset = read_uvarint(body, offset)
        p, offset = read_uvarint(body, offset)
        o, offset = read_uvarint(body, offset)
        triples.append((s, p, o))
    views: list = []
    if offset < len(body):
        view_count, offset = read_uvarint(body, offset)
        for _ in range(view_count):
            name, offset = decode_string(body, offset)
            text, offset = decode_string(body, offset)
            base_count, offset = read_uvarint(body, offset)
            bases = {}
            for _ in range(base_count):
                base, offset = _decode_bindings(body, offset)
                row_count, offset = read_uvarint(body, offset)
                rows = []
                for _ in range(row_count):
                    row, offset = _decode_bindings(body, offset)
                    rows.append(row)
                bases[base] = rows
            views.append((name, text, bases))
    return SnapshotData(namespaces, identifier, terms, triples, views)


def encode_graph_body(graph: Graph) -> bytes:
    """The raw (un-headered) snapshot body of ``graph``.

    Exposed for the process-shard DUMP RPC: the worker ships its graph as
    a snapshot body and the parent rebuilds it with
    :func:`decode_graph_body` + :func:`restore_graph`.
    """
    return bytes(_encode_body(graph))


def decode_graph_body(body: bytes) -> SnapshotData:
    """Decode a raw snapshot body produced by :func:`encode_graph_body`."""
    return _decode_body(body)


def restore_graph(data: SnapshotData) -> Graph:
    """Build a fresh :class:`Graph` from decoded snapshot contents."""
    namespaces = NamespaceManager()
    for prefix, base in data.namespaces:
        namespaces.bind(prefix, Namespace(base))
    identifier = data.identifier if isinstance(data.identifier, IRI) else None
    graph = Graph(identifier=identifier, namespaces=namespaces)
    graph.dictionary.load_terms(data.terms)
    add_encoded = graph.add_encoded
    for s, p, o in data.triples:
        add_encoded(s, p, o)
    return graph
