"""Checksummed point-in-time snapshots of one graph shard.

A snapshot is a compact, self-validating image of everything a shard needs
to come back: namespace bindings (CURIE resolution must survive a
restart), the optional graph identifier, the full term dictionary in id
order, and every triple as three varint ids.

File layout::

    [8 bytes magic "RPSNAP01"]
    [u32 crc32(body)] [u64 body length]      (little-endian)
    body:
        varint namespace-count, then (prefix, base) string pairs
        u8 has-identifier, then the identifier term if 1
        varint term-count, then the terms in id order
        varint triple-count, then 3 varints per triple

Writes are crash-atomic: the image is assembled in memory, written to a
``*.tmp`` sibling, fsynced, and :func:`os.replace`-d into place — a crash
mid-write leaves either the old snapshot or none, never a half-written
one.  Loads verify magic, length and checksum, and return ``None`` for
anything invalid so recovery can fall back to an older generation.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.persistence.codec import (
    decode_string,
    decode_term,
    decode_terms,
    encode_string,
    encode_term_into,
    read_uvarint,
    write_uvarint,
)
from repro.semantics.rdf.dictionary import TripleIds
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import Namespace, NamespaceManager
from repro.semantics.rdf.term import IRI, Term

_MAGIC = b"RPSNAP01"
_HEADER = struct.Struct("<IQ")  # crc32(body), body length


class SnapshotData:
    """The decoded contents of one snapshot file."""

    __slots__ = ("namespaces", "identifier", "terms", "triples")

    def __init__(
        self,
        namespaces: List[Tuple[str, str]],
        identifier: Optional[Term],
        terms: List[Term],
        triples: List[TripleIds],
    ):
        self.namespaces = namespaces
        self.identifier = identifier
        self.terms = terms
        self.triples = triples

    def __repr__(self) -> str:
        return f"<SnapshotData {len(self.terms)} terms, {len(self.triples)} triples>"


def _encode_body(graph: Graph) -> bytearray:
    body = bytearray()
    bindings = list(graph.namespaces.bindings())
    write_uvarint(body, len(bindings))
    for prefix, namespace in bindings:
        encode_string(body, prefix)
        encode_string(body, namespace.base)
    if graph.identifier is not None:
        body.append(1)
        encode_term_into(body, graph.identifier)
    else:
        body.append(0)
    terms = graph.dictionary.terms
    write_uvarint(body, len(terms))
    for term in terms:
        encode_term_into(body, term)
    write_uvarint(body, len(graph))
    count = 0
    for s, p, o in graph.triples_ids():
        write_uvarint(body, s)
        write_uvarint(body, p)
        write_uvarint(body, o)
        count += 1
    if count != len(graph):
        raise RuntimeError("graph mutated while snapshotting")
    return body


def write_snapshot(graph: Graph, path: Union[str, Path]) -> int:
    """Atomically write a snapshot of ``graph`` to ``path``.

    Returns the number of bytes written.  The caller must ensure the graph
    is not mutated concurrently (the persistence manager snapshots between
    ingest batches, on the ingesting thread's schedule).
    """
    path = Path(path)
    body = _encode_body(graph)
    image = bytearray(_MAGIC)
    image += _HEADER.pack(zlib.crc32(body), len(body))
    image += body
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(image)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(image)


def load_snapshot(path: Union[str, Path]) -> Optional[SnapshotData]:
    """Read and validate a snapshot; ``None`` when missing or corrupt."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError:
        return None
    prefix = len(_MAGIC) + _HEADER.size
    if len(data) < prefix or data[: len(_MAGIC)] != _MAGIC:
        return None
    crc, length = _HEADER.unpack_from(data, len(_MAGIC))
    body = data[prefix : prefix + length]
    if len(body) != length or zlib.crc32(body) != crc:
        return None
    try:
        return _decode_body(body)
    except (ValueError, IndexError):
        return None


def _decode_body(body: bytes) -> SnapshotData:
    offset = 0
    namespace_count, offset = read_uvarint(body, offset)
    namespaces: List[Tuple[str, str]] = []
    for _ in range(namespace_count):
        prefix, offset = decode_string(body, offset)
        base, offset = decode_string(body, offset)
        namespaces.append((prefix, base))
    has_identifier = body[offset]
    offset += 1
    identifier: Optional[Term] = None
    if has_identifier:
        identifier, offset = decode_term(body, offset)
    term_count, offset = read_uvarint(body, offset)
    terms, offset = decode_terms(body, offset, term_count)
    triple_count, offset = read_uvarint(body, offset)
    triples: List[TripleIds] = []
    for _ in range(triple_count):
        s, offset = read_uvarint(body, offset)
        p, offset = read_uvarint(body, offset)
        o, offset = read_uvarint(body, offset)
        triples.append((s, p, o))
    return SnapshotData(namespaces, identifier, terms, triples)


def restore_graph(data: SnapshotData) -> Graph:
    """Build a fresh :class:`Graph` from decoded snapshot contents."""
    namespaces = NamespaceManager()
    for prefix, base in data.namespaces:
        namespaces.bind(prefix, Namespace(base))
    identifier = data.identifier if isinstance(data.identifier, IRI) else None
    graph = Graph(identifier=identifier, namespaces=namespaces)
    graph.dictionary.load_terms(data.terms)
    add_encoded = graph.add_encoded
    for s, p, o in data.triples:
        add_encoded(s, p, o)
    return graph
