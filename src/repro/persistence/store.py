"""Segment rotation, crash recovery, and the multi-shard manager.

One shard's durable state is a *generation*: ``snap-<gen>.bin`` (the state
at checkpoint time) plus ``wal-<gen>.log`` (every op since).  A checkpoint
advances the generation with a strict ordering that keeps every instant
crash-recoverable:

1. write ``snap-<gen+1>.bin`` (itself atomic: tmp + fsync + rename),
2. open ``wal-<gen+1>.log`` and rotate the graph's journal onto it,
3. delete the old generation's files *last*.

A crash before (1) completes leaves the old generation intact; a crash
between (1) and (3) leaves both generations, and recovery simply picks the
newest valid snapshot.  Recovery replays the matching WAL, truncates any
torn tail, and re-opens the segment for appending.

:class:`StorePersistence` manages one directory tree for a whole
:class:`~repro.semantics.rdf.sharding.ShardedGraphStore` (or a single
graph — a one-shard store), owns ``meta.json`` (the shard count is fixed
at first attach; re-sharding an existing data dir is refused) and
``views.json`` (standing-view registrations replayed on restart).
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ReproError
from repro.persistence.snapshot import load_snapshot, restore_graph, write_snapshot
from repro.persistence.wal import GraphWal, WriteAheadLog, apply_ops, replay_wal
from repro.semantics.rdf.graph import Graph

_SNAP_RE = re.compile(r"^snap-(\d{8})\.bin$")
_WAL_RE = re.compile(r"^wal-(\d{8})\.log$")

#: Default WAL records per segment before :meth:`StorePersistence.maybe_checkpoint`
#: rolls a new snapshot.
DEFAULT_SNAPSHOT_INTERVAL = 50_000


def _snap_name(gen: int) -> str:
    return f"snap-{gen:08d}.bin"


def _wal_name(gen: int) -> str:
    return f"wal-{gen:08d}.log"


class StoreMetadataError(ReproError, RuntimeError):
    """``meta.json`` is missing, corrupt, or not a store description.

    Raised instead of a raw ``JSONDecodeError``/``KeyError`` so callers can
    distinguish "this directory is damaged" from a programming error.  The
    meta file is written atomically (tmp + fsync + rename), so corruption
    here means external interference, not a crash mid-write.  Keeps
    :class:`RuntimeError` in its bases for pre-hierarchy callers; the
    stable code ``store_metadata`` feeds the gateway's status table.
    """

    code = "store_metadata"


def _atomic_write_json(path: Path, payload: object) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class ShardPersistence:
    """Durability for one shard: a snapshot generation plus its WAL."""

    def __init__(
        self, shard_dir: Union[str, Path], fsync: str = "batch", fault_hook=None
    ):
        self.shard_dir = Path(shard_dir)
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        #: Passed through to every WAL segment (fault injection; see
        #: :class:`repro.core.faults.FaultInjector`).
        self.fault_hook = fault_hook
        self.generation = 0
        self.graph: Optional[Graph] = None
        self.wal: Optional[WriteAheadLog] = None
        self.graph_wal: Optional[GraphWal] = None
        #: Ops replayed from the WAL tail during the last :meth:`recover`.
        self.replayed_ops = 0
        #: Optional callable returning the standing-view rows to persist in
        #: the next checkpoint's snapshot, as ``(name, text, bases)``
        #: tuples; the caller must refresh the views first so the rows
        #: match the snapshotted graph state.
        self.view_source = None
        #: View-rows section of the snapshot the last :meth:`recover` chose.
        self._recovered_views: list = []

    # -- directory scanning -------------------------------------------- #

    def _generations(self, pattern: "re.Pattern[str]") -> List[int]:
        gens = []
        for entry in self.shard_dir.iterdir():
            match = pattern.match(entry.name)
            if match:
                gens.append(int(match.group(1)))
        gens.sort()
        return gens

    # -- cold start ----------------------------------------------------- #

    def attach(self, graph: Graph) -> None:
        """Start journalling a fresh (never-persisted) graph.

        Writes the generation-0 snapshot of the graph's current state —
        typically the replicated ontology axioms — then opens the WAL, so
        a crash before the first commit still recovers to the base state.
        """
        self.graph = graph
        write_snapshot(graph, self.shard_dir / _snap_name(self.generation))
        self.wal = WriteAheadLog(
            self.shard_dir / _wal_name(self.generation),
            fsync=self.fsync,
            fault_hook=self.fault_hook,
        )
        self.graph_wal = GraphWal(graph, self.wal)

    # -- recovery ------------------------------------------------------- #

    def recover(self) -> Graph:
        """Rebuild the shard's graph from the newest valid generation.

        Loads the newest snapshot that validates, replays its WAL tail up
        to the last intact record, truncates the torn remainder, and
        re-opens the segment for appending.  When no snapshot validates at
        all, recovery starts from an empty graph on a generation past
        anything on disk — a stale WAL must not be replayed against a
        dictionary it was not written for.
        """
        snap_gens = self._generations(_SNAP_RE)
        wal_gens = self._generations(_WAL_RE)
        graph: Optional[Graph] = None
        chosen: Optional[int] = None
        for gen in reversed(snap_gens):
            data = load_snapshot(self.shard_dir / _snap_name(gen))
            if data is not None:
                graph = restore_graph(data)
                chosen = gen
                self._recovered_views = data.views
                break
        self.replayed_ops = 0
        if graph is None:
            graph = Graph()
            highest = max(snap_gens + wal_gens, default=-1)
            self.generation = highest + 1
            self.graph = graph
            write_snapshot(graph, self.shard_dir / _snap_name(self.generation))
            self.wal = WriteAheadLog(
                self.shard_dir / _wal_name(self.generation),
                fsync=self.fsync,
                fault_hook=self.fault_hook,
            )
            self.graph_wal = GraphWal(graph, self.wal)
            return graph
        self.generation = chosen
        wal_path = self.shard_dir / _wal_name(chosen)
        ops, valid_bytes = replay_wal(wal_path)
        apply_ops(graph, ops)
        self.replayed_ops = len(ops)
        if wal_path.exists() and wal_path.stat().st_size > valid_bytes:
            os.truncate(wal_path, valid_bytes)
        self.graph = graph
        self.wal = WriteAheadLog(
            wal_path, fsync=self.fsync, fault_hook=self.fault_hook
        )
        self.wal.records = len(ops)
        self.graph_wal = GraphWal(graph, self.wal)
        # newer-but-corrupt generations (a snapshot that failed validation)
        # are dead weight; drop them so the directory converges
        for gen in snap_gens:
            if gen > chosen:
                (self.shard_dir / _snap_name(gen)).unlink(missing_ok=True)
        for gen in wal_gens:
            if gen > chosen:
                (self.shard_dir / _wal_name(gen)).unlink(missing_ok=True)
        return graph

    # -- steady state --------------------------------------------------- #

    def commit(self) -> None:
        """Make everything journalled so far durable (per the fsync policy)."""
        if self.wal is not None:
            self.wal.commit()

    def checkpoint(self) -> None:
        """Roll a new generation: snapshot, fresh WAL, then prune the old."""
        if self.graph is None or self.wal is None or self.graph_wal is None:
            raise RuntimeError("checkpoint before attach/recover")
        old_gen = self.generation
        new_gen = old_gen + 1
        views = self.view_source() if self.view_source is not None else None
        write_snapshot(self.graph, self.shard_dir / _snap_name(new_gen), views=views)
        old_wal = self.wal
        self.wal = WriteAheadLog(
            self.shard_dir / _wal_name(new_gen),
            fsync=self.fsync,
            fault_hook=self.fault_hook,
        )
        self.graph_wal.rotate(self.wal)
        self.generation = new_gen
        old_wal.close()
        (self.shard_dir / _wal_name(old_gen)).unlink(missing_ok=True)
        (self.shard_dir / _snap_name(old_gen)).unlink(missing_ok=True)

    def close(self) -> None:
        """Graceful shutdown: commit, detach the journal, release the file."""
        if self.graph_wal is not None:
            self.graph_wal.detach()
            self.graph_wal = None
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    def kill(self) -> None:
        """Simulate a process kill: uncommitted buffered records vanish."""
        if self.graph_wal is not None:
            self.graph_wal.detach()
            self.graph_wal = None
        if self.wal is not None:
            self.wal.kill()
            self.wal = None

    # -- recovered standing-view rows ----------------------------------- #

    def view_seed(self, name: str, text: str):
        """The recovered row seed for one standing view, if still valid.

        Returns the ``base -> rows`` mapping persisted in the recovered
        snapshot, or ``None`` when the view must re-materialize: the
        stored query text no longer matches the registration, or the
        recovery replayed WAL ops on top of the snapshot (the stored rows
        describe snapshot-time state, not the replayed graph).
        """
        if self.replayed_ops != 0:
            return None
        for stored_name, stored_text, bases in self._recovered_views:
            if stored_name == name:
                if stored_text != text:
                    return None
                return bases
        return None

    def __repr__(self) -> str:
        return f"<ShardPersistence {self.shard_dir} gen={self.generation}>"


class StorePersistence:
    """One data directory holding every shard of a store, plus metadata."""

    def __init__(
        self,
        data_dir: Union[str, Path],
        fsync: str = "batch",
        snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL,
    ):
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.snapshot_interval = snapshot_interval
        self.shards: List[ShardPersistence] = []
        #: Optional callable invoked by :meth:`kill` before the local
        #: shards are killed — the process backend hooks this to SIGKILL
        #: semantics for its workers (tests only).
        self.kill_hook = None

    # -- metadata ------------------------------------------------------- #

    @property
    def meta_path(self) -> Path:
        return self.data_dir / "meta.json"

    @property
    def views_path(self) -> Path:
        return self.data_dir / "views.json"

    @property
    def recoverable(self) -> bool:
        """Whether this directory holds a previously-persisted store."""
        return self.meta_path.exists()

    def _read_meta(self) -> Dict[str, object]:
        try:
            with open(self.meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreMetadataError(
                f"{self.meta_path} is corrupt ({exc}); the store cannot be "
                "recovered until the metadata is restored or the directory "
                "is re-initialised"
            ) from exc
        except OSError as exc:
            raise StoreMetadataError(
                f"{self.meta_path} is unreadable ({exc})"
            ) from exc
        if not isinstance(meta, dict) or not isinstance(meta.get("shards"), int):
            raise StoreMetadataError(
                f"{self.meta_path} does not describe a persisted store "
                f"(missing integer 'shards' field): {meta!r}"
            )
        return meta

    def _shard_dir(self, index: int) -> Path:
        return self.data_dir / f"shard-{index:04d}"

    # -- lifecycle ------------------------------------------------------ #

    def attach_all(self, graphs: List[Graph], backend: str = "inline") -> None:
        """Start persisting ``graphs`` (one per shard) into an empty dir.

        ``meta.json`` is written only after every shard's generation-0
        snapshot is durable, so :attr:`recoverable` never observes a
        half-initialised directory.
        """
        if self.recoverable:
            raise ValueError(
                f"{self.data_dir} already holds a persisted store; "
                "recover it instead of attaching fresh graphs"
            )
        for index, graph in enumerate(graphs):
            shard = ShardPersistence(self._shard_dir(index), fsync=self.fsync)
            shard.attach(graph)
            self.shards.append(shard)
        _atomic_write_json(
            self.meta_path,
            {"version": 1, "shards": len(graphs), "backend": backend},
        )

    def register_remote(self, num_shards: int, backend: str) -> None:
        """Record metadata for shards persisted by worker processes.

        The process backend's workers each own their shard's
        :class:`ShardPersistence`; the parent only writes ``meta.json``
        (after every worker has reported its generation-0 snapshot
        durable), keeping the same never-half-initialised ordering as
        :meth:`attach_all`.  The parent's own :attr:`shards` list stays
        empty — commit / checkpoint / close of the worker segments happen
        over RPC, not here.
        """
        if self.recoverable:
            raise ValueError(
                f"{self.data_dir} already holds a persisted store; "
                "recover it instead of attaching fresh graphs"
            )
        _atomic_write_json(
            self.meta_path,
            {"version": 1, "shards": num_shards, "backend": backend},
        )

    def validate_meta(
        self, expected_shards: Optional[int] = None, backend: Optional[str] = None
    ) -> Dict[str, object]:
        """Check ``meta.json`` against the configuration; return the meta.

        ``expected_shards`` guards against configuration drift: ids are
        routed by ``hash(area) % shards``, so reopening a 4-shard directory
        as 8 shards would silently misroute — it is refused instead.  A
        backend mismatch is refused for the same reason: the worker-owned
        and parent-owned segment layouts are the same on disk, but the WAL
        replay boundary (who owns the in-flight batch) differs.
        """
        meta = self._read_meta()
        num_shards = int(meta["shards"])
        if expected_shards is not None and expected_shards != num_shards:
            raise ValueError(
                f"data dir {self.data_dir} was persisted with {num_shards} "
                f"shard(s) but the configuration asks for {expected_shards}; "
                "re-sharding an existing data dir is not supported"
            )
        stored_backend = str(meta.get("backend", "inline"))
        if backend is not None and backend != stored_backend:
            raise ValueError(
                f"data dir {self.data_dir} was persisted with the "
                f"{stored_backend!r} shard backend but the configuration asks "
                f"for {backend!r}; reopen it with the backend that wrote it"
            )
        return meta

    def recover_all(
        self, expected_shards: Optional[int] = None, backend: str = "inline"
    ) -> List[Graph]:
        """Recover every shard of a previously-persisted store."""
        meta = self.validate_meta(expected_shards, backend)
        num_shards = int(meta["shards"])
        graphs: List[Graph] = []
        for index in range(num_shards):
            shard = ShardPersistence(self._shard_dir(index), fsync=self.fsync)
            graphs.append(shard.recover())
            self.shards.append(shard)
        return graphs

    # -- steady state --------------------------------------------------- #

    def commit(self) -> None:
        """Commit every shard's WAL (called once per ingest batch)."""
        for shard in self.shards:
            shard.commit()

    def maybe_checkpoint(self) -> int:
        """Checkpoint shards whose WAL grew past the snapshot interval.

        Returns the number of shards checkpointed.
        """
        rolled = 0
        for shard in self.shards:
            if shard.wal is not None and shard.wal.records >= self.snapshot_interval:
                shard.checkpoint()
                rolled += 1
        return rolled

    def checkpoint_all(self) -> None:
        """Force a checkpoint of every shard."""
        for shard in self.shards:
            shard.checkpoint()

    def close(self) -> None:
        """Graceful shutdown of every shard."""
        for shard in self.shards:
            shard.close()

    def kill(self) -> None:
        """Simulate a process kill across every shard (tests only)."""
        if self.kill_hook is not None:
            self.kill_hook()
        for shard in self.shards:
            shard.kill()

    def health(self) -> Dict[str, object]:
        """Durable-store state for the layered health report.

        Per locally-attached shard: the current snapshot generation and
        the WAL depth behind it (records an unclean stop would replay).
        A store whose shards live in worker processes (the process
        backend) reports only the layout — the workers own their WALs.
        """
        return {
            "path": str(self.data_dir),
            "fsync": self.fsync,
            "snapshot_interval": self.snapshot_interval,
            "shards": [
                {
                    "shard": index,
                    "generation": shard.generation,
                    "wal_records": shard.wal.records if shard.wal is not None else 0,
                }
                for index, shard in enumerate(self.shards)
            ],
        }

    # -- standing-view registrations ------------------------------------ #

    def record_standing(
        self, name: Optional[str], text: str, push: Optional[bool] = None
    ) -> None:
        """Persist one standing-view registration.

        Idempotent, keyed by ``name`` (falling back to the query text for
        anonymous views).  ``push=None`` keeps a previously recorded push
        flag, so re-registration during recovery does not strip the
        middleware's push wiring from the record.
        """
        key = name if name is not None else text
        views = self.standing_registrations()
        existing = [v for v in views if (v["name"] or v["text"]) == key]
        if push is None:
            push = bool(existing[0]["push"]) if existing else False
        views = [v for v in views if (v["name"] or v["text"]) != key]
        views.append({"name": name, "text": text, "push": push})
        views.sort(key=lambda v: (v["name"] or v["text"]))
        _atomic_write_json(self.views_path, views)

    def standing_registrations(self) -> List[Dict[str, object]]:
        """The persisted standing-view registrations (possibly empty)."""
        if not self.views_path.exists():
            return []
        with open(self.views_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def __repr__(self) -> str:
        return f"<StorePersistence {self.data_dir} shards={len(self.shards)}>"
