"""Per-shard append-only write-ahead log.

Record stream: ``[u32 payload length][u32 crc32(payload)][payload]`` frames,
little-endian.  A frame's payload is a *sequence* of ops, each starting
with its opcode byte:

* ``T`` — dictionary segment: ``varint id`` + one encoded term.  The term
  dictionary is append-only, so replaying ``T`` records in order reproduces
  the exact id assignment; every triple op only references ids defined by
  an earlier ``T`` record or by the snapshot the segment is based on.
* ``A`` / ``R`` — add / remove of one encoded triple: three fixed-width
  little-endian u32 ids (dictionary ids are dense list indexes, so u32
  cannot overflow for an in-memory store; the fixed layout packs and
  unpacks in one C call on the hottest path of the whole subsystem).
* ``C`` — clear: the indexes empty, the dictionary is *kept* (mirroring
  :meth:`~repro.semantics.rdf.graph.Graph.clear`'s id-stability contract).

Frame granularity follows the durability policy: under ``"always"`` every
op is sealed (crc + length) and fsynced as its own frame, while under
``"batch"`` / ``"never"`` ops accumulate in one open frame that is sealed
at :meth:`commit` — the checksum then covers the whole batch at C speed
instead of taxing every mutation, and a torn frame loses exactly the batch
that was never durable in the first place.

Replay (:func:`replay_wal`) is tolerant of a **torn tail**: a crash can cut
the final frame anywhere (short header, short payload, failed checksum) and
recovery simply stops at the last intact frame — the log's length prefix +
checksum make "intact" decidable without trusting the file size.

Durability policy (``fsync``):

* ``"always"`` — every append is written and fsynced before returning.
* ``"batch"`` (default) — appends accumulate in a buffer; :meth:`commit`
  writes and fsyncs.  The ingestion layer commits once per batch, so a
  crash loses at most the current batch.
* ``"never"`` — :meth:`commit` writes to the OS but never fsyncs; a crash
  of the *process* still loses only the current batch, a crash of the
  *machine* may lose what the kernel had not flushed.

The file is opened unbuffered and the buffer is this module's own, so
dropping a :class:`WriteAheadLog` without :meth:`commit` models a process
kill exactly: nothing buffered reaches the file behind the crash's back.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import List, Tuple, Union

from repro.persistence.codec import (
    decode_term,
    encode_term_into,
    read_uvarint,
    write_uvarint,
)
from repro.semantics.rdf.dictionary import TripleIds
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.term import Term

_FRAME = struct.Struct("<II")  # payload length, crc32
_HEADER_SIZE = _FRAME.size
_FRAME_HOLE = bytes(_HEADER_SIZE)

# a whole triple op — opcode + three fixed u32 ids — packs in one C call;
# dictionary ids are dense list indexes, so u32 can never overflow in RAM
_TRIPLE_OP = struct.Struct("<BIII")
_TRIPLE_IDS = struct.Struct("<III")

#: An op produced by :func:`replay_wal`.
#: ``("term", id, Term)`` | ``("add", s, p, o)`` | ``("remove", s, p, o)``
#: | ``("clear",)``
WalOp = Tuple[object, ...]

_OP_TERM = ord("T")
_OP_ADD = ord("A")
_OP_REMOVE = ord("R")
_OP_CLEAR = ord("C")

#: Upper bound on a single record payload; anything larger is corruption.
_MAX_PAYLOAD = 1 << 28

#: Soft cap on the in-memory buffer before it spills to the OS (without
#: fsync) even under the "batch" / "never" policies.
_SPILL_BYTES = 1 << 20

FSYNC_POLICIES = ("always", "batch", "never")


class WriteAheadLog:
    """An append-only framed record log with a configurable fsync policy."""

    def __init__(self, path: Union[str, Path], fsync: str = "batch", fault_hook=None):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        self.path = Path(path)
        self.fsync = fsync
        self._fsync_always = fsync == "always"
        #: Optional fault-injection hook called before writes and fsyncs
        #: (``hook(event, buffer=..., fh=...)``); raising ``OSError`` from it
        #: models a full disk, and it may write a partial frame first to
        #: model a torn tail.  See :mod:`repro.core.faults`.
        self.fault_hook = fault_hook
        self._file = open(self.path, "ab", buffering=0)
        # the buffer always carries an OPEN frame: an 8-byte header hole
        # at _frame_start with ops accumulating after it.  Keeping the
        # hole pre-opened means the append paths never branch on frame
        # state — they just push bytes.
        self._buffer = bytearray(_FRAME_HOLE)
        self._frame_start = 0
        #: Records appended to this segment (including replayed ones when
        #: the caller seeds it after recovery) — drives checkpoint cadence.
        self.records = 0

    # -- framing ------------------------------------------------------- #
    #
    # Ops are encoded straight into the shared buffer behind the open
    # frame's header hole; the length + crc are patched in when the frame
    # seals (per op under "always", per commit otherwise).  One pass, no
    # per-record allocation: this is the hottest path of the whole
    # persistence layer — it rides every graph mutation of every shard.

    def _seal_frame(self) -> None:
        buffer = self._buffer
        start = self._frame_start
        begin = start + _HEADER_SIZE
        if len(buffer) == begin:
            # nothing was appended: drop the empty frame instead of
            # writing a zero-length record
            del buffer[start:]
            return
        crc = zlib.crc32(memoryview(buffer)[begin:])
        _FRAME.pack_into(buffer, start, len(buffer) - begin, crc)

    def _open_frame(self) -> None:
        self._frame_start = len(self._buffer)
        self._buffer += _FRAME_HOLE

    def _flush_always(self) -> None:
        """Seal + write + fsync one op's frame (the ``"always"`` policy)."""
        self._seal_frame()
        self._write_out()
        if self.fault_hook is not None:
            self.fault_hook("fsync", fh=self._file)
        os.fsync(self._file.fileno())
        self._open_frame()

    def _spill(self) -> None:
        """Push an oversized batch frame to the OS without fsync."""
        self._seal_frame()
        self._write_out()
        self._open_frame()

    def _after_op(self) -> None:
        self.records += 1
        if self._fsync_always:
            self._flush_always()
        elif len(self._buffer) >= _SPILL_BYTES:
            self._spill()

    def _write_out(self) -> None:
        if not self._buffer:
            return
        if self.fault_hook is not None:
            self.fault_hook("write", buffer=self._buffer, fh=self._file)
            if not self._buffer:
                # the hook consumed the frame (torn-write injection)
                return
        view = memoryview(self._buffer)
        while view:
            written = self._file.write(view)
            view = view[written:]
        view.release()
        # clear in place: the buffer object's identity is part of the API
        # (GraphWal caches it to journal without an attribute/method hop)
        del self._buffer[:]

    # -- the op vocabulary --------------------------------------------- #

    def append_term(self, term_id: int, term: Term) -> None:
        """Log one dictionary segment entry (``id -> term``)."""
        buffer = self._buffer
        buffer.append(_OP_TERM)
        write_uvarint(buffer, term_id)
        encode_term_into(buffer, term)
        self._after_op()

    def append_terms(self, start_id: int, terms) -> None:
        """Log a run of consecutive dictionary entries in one call.

        Equivalent to ``append_term`` per entry (one ``T`` op each) but
        pays the durability-policy check once, with the id varint written
        inline — the shape :class:`GraphWal` hits before every triple of
        a fresh observation.
        """
        buffer = self._buffer
        term_id = start_id
        for term in terms:
            buffer.append(_OP_TERM)
            value = term_id
            while value > 0x7F:
                buffer.append((value & 0x7F) | 0x80)
                value >>= 7
            buffer.append(value)
            encode_term_into(buffer, term)
            term_id += 1
        self.records += term_id - start_id
        if self._fsync_always:
            self._flush_always()
        elif len(buffer) >= _SPILL_BYTES:
            self._spill()

    def append_add(self, ids: TripleIds) -> None:
        """Log the insertion of one encoded triple."""
        # one C-level pack for the whole op, no frame-state branch: this
        # method rides every triple insert of every shard
        self._buffer += _TRIPLE_OP.pack(_OP_ADD, ids[0], ids[1], ids[2])
        self._after_op()

    def append_remove(self, ids: TripleIds) -> None:
        """Log the removal of one encoded triple."""
        self._buffer += _TRIPLE_OP.pack(_OP_REMOVE, ids[0], ids[1], ids[2])
        self._after_op()

    def append_clear(self) -> None:
        """Log a clear (indexes emptied, dictionary kept)."""
        self._buffer.append(_OP_CLEAR)
        self._after_op()

    # -- durability ---------------------------------------------------- #

    def commit(self) -> None:
        """Seal the open frame, flush it to the file, fsync per policy."""
        self._seal_frame()
        self._write_out()
        if self.fsync != "never":
            if self.fault_hook is not None:
                self.fault_hook("fsync", fh=self._file)
            os.fsync(self._file.fileno())
        self._open_frame()

    def close(self) -> None:
        """Commit and close (a graceful shutdown, not a crash)."""
        if self._file.closed:
            return
        self.commit()
        self._file.close()

    def kill(self) -> None:
        """Drop the buffer and the file handle *without* flushing.

        Models a ``SIGKILL`` for the crash-recovery tests: whatever
        :meth:`commit` had not pushed to the file never existed.
        """
        self._buffer = bytearray(_FRAME_HOLE)
        self._frame_start = 0
        if not self._file.closed:
            self._file.close()

    def __repr__(self) -> str:
        return f"<WriteAheadLog {self.path} records={self.records} fsync={self.fsync}>"


def _decode_op(payload: bytes, offset: int) -> Tuple[WalOp, int]:
    opcode = payload[offset]
    offset += 1
    if opcode == _OP_ADD or opcode == _OP_REMOVE:
        end = offset + _TRIPLE_IDS.size
        if end > len(payload):
            raise ValueError("truncated triple op")
        s, p, o = _TRIPLE_IDS.unpack_from(payload, offset)
        return ("add" if opcode == _OP_ADD else "remove", s, p, o), end
    if opcode == _OP_TERM:
        term_id, offset = read_uvarint(payload, offset)
        term, offset = decode_term(payload, offset)
        return ("term", term_id, term), offset
    if opcode == _OP_CLEAR:
        return ("clear",), offset
    raise ValueError(f"unknown WAL opcode {opcode}")


def replay_wal(path: Union[str, Path]) -> Tuple[List[WalOp], int]:
    """Read every intact record of a WAL segment.

    Returns ``(ops, valid_length)`` where ``valid_length`` is the byte
    offset just past the last intact record.  A torn or corrupt tail —
    short frame header, short payload, checksum failure, undecodable
    payload — ends the replay silently: everything at or after the first
    bad frame is treated as never written.  Callers re-opening the segment
    for appending must truncate it to ``valid_length`` first.
    """
    path = Path(path)
    if not path.exists():
        return [], 0
    data = path.read_bytes()
    ops: List[WalOp] = []
    offset = 0
    size = len(data)
    header = _FRAME.size
    while offset + header <= size:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + header
        end = start + length
        if length > _MAX_PAYLOAD or end > size:
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break
        # a frame holds 1+ ops; keep all or none — a decode failure inside
        # a checksum-valid frame means the frame was never fully written
        frame_ops: List[WalOp] = []
        position = 0
        try:
            while position < length:
                op, position = _decode_op(payload, position)
                frame_ops.append(op)
        except (ValueError, IndexError):
            break
        ops.extend(frame_ops)
        offset = end
    return ops, offset


def apply_ops(graph: Graph, ops: List[WalOp]) -> None:
    """Replay decoded WAL ops onto ``graph`` (snapshot state loaded first)."""
    dictionary = graph.dictionary
    for op in ops:
        kind = op[0]
        if kind == "add":
            graph.add_encoded(op[1], op[2], op[3])
        elif kind == "remove":
            graph.remove(dictionary.decode_triple((op[1], op[2], op[3])))
        elif kind == "term":
            dictionary.define(op[1], op[2])
        else:  # "clear"
            graph.clear()


class GraphWal:
    """The journal sink binding one :class:`Graph` to one WAL segment.

    Registered via :meth:`Graph.attach_journal`, it receives every mutation
    *in order* (unlike a :class:`~repro.semantics.rdf.graph.ChangeTracker`,
    whose drained delta folds adds and retractions together and therefore
    cannot express ``add a; clear; add b``).  Before each triple op it logs
    the dictionary's growth since the last op as ``T`` records, so the
    replayed dictionary always assigns exactly the original ids.
    """

    __slots__ = (
        "graph",
        "wal",
        "_buffer",
        "_always",
        "_terms",
        "_terms_logged",
    )

    def __init__(self, graph: Graph, wal: WriteAheadLog):
        self.graph = graph
        self.wal = wal
        # the dictionary's term list is append-only and mutated in place,
        # so caching the list object keeps the per-op staleness check at
        # one C-level len(); the WAL's buffer identity is likewise stable
        # for the life of a segment, letting log_add/log_remove journal
        # without an extra method call per mutation
        self._buffer = wal._buffer
        self._always = wal._fsync_always
        self._terms = graph.dictionary.terms
        self._terms_logged = len(self._terms)
        graph.attach_journal(self)

    def _sync_terms(self) -> None:
        terms = self._terms
        logged = self._terms_logged
        self.wal.append_terms(logged, terms[logged:])
        self._terms_logged = len(terms)

    # -- the Graph journal protocol ------------------------------------ #

    def log_add(self, ids: TripleIds) -> None:
        # inlined WriteAheadLog.append_add: one mutation = one call here,
        # and the journal rides every graph mutation of every shard
        if len(self._terms) != self._terms_logged:
            self._sync_terms()
        buffer = self._buffer
        buffer += _TRIPLE_OP.pack(_OP_ADD, ids[0], ids[1], ids[2])
        wal = self.wal
        wal.records += 1
        if self._always:
            wal._flush_always()
        elif len(buffer) >= _SPILL_BYTES:
            wal._spill()

    def log_remove(self, ids: TripleIds) -> None:
        if len(self._terms) != self._terms_logged:
            self._sync_terms()
        buffer = self._buffer
        buffer += _TRIPLE_OP.pack(_OP_REMOVE, ids[0], ids[1], ids[2])
        wal = self.wal
        wal.records += 1
        if self._always:
            wal._flush_always()
        elif len(buffer) >= _SPILL_BYTES:
            wal._spill()

    def log_clear(self) -> None:
        self.wal.append_clear()

    # -- segment rotation ---------------------------------------------- #

    def rotate(self, wal: WriteAheadLog) -> None:
        """Switch to a fresh segment after a snapshot captured the state.

        The snapshot holds the full dictionary, so term logging restarts
        from the dictionary's current length.
        """
        self.wal = wal
        self._buffer = wal._buffer
        self._always = wal._fsync_always
        self._terms_logged = len(self._terms)

    def detach(self) -> None:
        """Stop observing the graph (idempotent)."""
        self.graph.detach_journal(self)
