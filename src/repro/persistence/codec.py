"""Binary encoding of terms and integers for the WAL and snapshots.

The on-disk formats share two primitives: LEB128 unsigned varints (graph
ids are dense and small, so most encode in one or two bytes) and a
self-describing term encoding (one kind byte, then the term's components).
Terms round-trip *structurally*: decoding yields a term ``==`` to the one
encoded, which is all id stability needs — the dictionary re-interns by
structural equality.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.semantics.rdf.term import (
    XSD_STRING,
    BlankNode,
    IRI,
    Literal,
    Term,
    Variable,
)

# ------------------------------------------------------------------ #
# varints
# ------------------------------------------------------------------ #


def write_uvarint(buffer: bytearray, value: int) -> None:
    """Append ``value`` (>= 0) to ``buffer`` as a LEB128 varint."""
    if 0 <= value < 0x80:
        # graph ids are dense and small: the single-byte case dominates
        # the WAL hot path, so skip the loop entirely
        buffer.append(value)
        return
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    while value > 0x7F:
        buffer.append((value & 0x7F) | 0x80)
        value >>= 7
    buffer.append(value)


def read_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    """Read a varint at ``offset``; returns ``(value, next_offset)``."""
    value = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ValueError("truncated varint")
        byte = data[offset]
        offset += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, offset
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def _write_bytes(buffer: bytearray, payload: bytes) -> None:
    write_uvarint(buffer, len(payload))
    buffer.extend(payload)


def _read_bytes(data: bytes, offset: int) -> Tuple[bytes, int]:
    length, offset = read_uvarint(data, offset)
    end = offset + length
    if end > len(data):
        raise ValueError("truncated byte string")
    return data[offset:end], end


# ------------------------------------------------------------------ #
# terms
# ------------------------------------------------------------------ #

_KIND_IRI = ord("I")
_KIND_BNODE = ord("B")
_KIND_VARIABLE = ord("V")
_KIND_LITERAL = ord("L")

# literal tail layouts
_LIT_PLAIN = 0  # xsd:string, no language tag
_LIT_DATATYPE = 1  # explicit datatype IRI follows
_LIT_LANG = 2  # language tag follows


def encode_term_into(buffer: bytearray, term: Term) -> None:
    """Append the encoding of ``term`` to ``buffer``."""
    if isinstance(term, IRI):
        # inlined length-prefix write: IRIs dominate the WAL term stream
        raw = term.value.encode("utf-8")
        buffer.append(_KIND_IRI)
        write_uvarint(buffer, len(raw))
        buffer += raw
    elif isinstance(term, Literal):
        raw = term.lexical.encode("utf-8")
        buffer.append(_KIND_LITERAL)
        write_uvarint(buffer, len(raw))
        buffer += raw
        if term.lang is not None:
            buffer.append(_LIT_LANG)
            _write_bytes(buffer, term.lang.encode("utf-8"))
        elif term.datatype is None or term.datatype == XSD_STRING:
            buffer.append(_LIT_PLAIN)
        else:
            buffer.append(_LIT_DATATYPE)
            _write_bytes(buffer, term.datatype.value.encode("utf-8"))
    elif isinstance(term, BlankNode):
        buffer.append(_KIND_BNODE)
        _write_bytes(buffer, term.id.encode("utf-8"))
    elif isinstance(term, Variable):
        # variables never occur in stored triples, but dictionaries are
        # shared with pattern machinery; tolerate them for completeness
        buffer.append(_KIND_VARIABLE)
        _write_bytes(buffer, term.name.encode("utf-8"))
    else:
        raise TypeError(f"cannot encode term of type {type(term)!r}")


def encode_term(term: Term) -> bytes:
    """The stand-alone encoding of one term."""
    buffer = bytearray()
    encode_term_into(buffer, term)
    return bytes(buffer)


def decode_term(data: bytes, offset: int = 0) -> Tuple[Term, int]:
    """Decode one term at ``offset``; returns ``(term, next_offset)``."""
    if offset >= len(data):
        raise ValueError("truncated term")
    kind = data[offset]
    offset += 1
    if kind == _KIND_IRI:
        raw, offset = _read_bytes(data, offset)
        return IRI(raw.decode("utf-8")), offset
    if kind == _KIND_LITERAL:
        raw, offset = _read_bytes(data, offset)
        lexical = raw.decode("utf-8")
        if offset >= len(data):
            raise ValueError("truncated literal")
        layout = data[offset]
        offset += 1
        if layout == _LIT_PLAIN:
            return Literal(lexical), offset
        if layout == _LIT_DATATYPE:
            raw, offset = _read_bytes(data, offset)
            return Literal(lexical, datatype=IRI(raw.decode("utf-8"))), offset
        if layout == _LIT_LANG:
            raw, offset = _read_bytes(data, offset)
            return Literal(lexical, lang=raw.decode("utf-8")), offset
        raise ValueError(f"unknown literal layout {layout}")
    if kind == _KIND_BNODE:
        raw, offset = _read_bytes(data, offset)
        return BlankNode(raw.decode("utf-8")), offset
    if kind == _KIND_VARIABLE:
        raw, offset = _read_bytes(data, offset)
        return Variable(raw.decode("utf-8")), offset
    raise ValueError(f"unknown term kind {kind}")


def encode_string(buffer: bytearray, text: str) -> None:
    """Append a length-prefixed UTF-8 string."""
    _write_bytes(buffer, text.encode("utf-8"))


def decode_string(data: bytes, offset: int) -> Tuple[str, int]:
    """Read a length-prefixed UTF-8 string."""
    raw, offset = _read_bytes(data, offset)
    return raw.decode("utf-8"), offset


def decode_terms(data: bytes, offset: int, count: int) -> Tuple[List[Term], int]:
    """Decode ``count`` consecutive terms."""
    terms: List[Term] = []
    for _ in range(count):
        term, offset = decode_term(data, offset)
        terms.append(term)
    return terms, offset
