"""Durable storage for the dictionary-encoded graph store.

Everything else in the middleware is an in-memory object: a process death
loses every district's annotations, closure and standing view.  This
package is the fix — a per-shard append-only **write-ahead log** of encoded
``(int, int, int)`` add/remove deltas (the same shape the
:class:`~repro.semantics.rdf.graph.ChangeTracker` journal already buffers)
interleaved with ``(id, term)`` dictionary segments, plus periodic compact
**snapshots** of dictionary + SPO index with checksums, and crash-recovery
replay: load the newest valid snapshot, then replay the WAL tail, stopping
cleanly at a torn final record.

Layout::

    data_dir/
        meta.json            # shard count (re-sharding is refused)
        views.json           # standing-view registrations, replayed on restart
        shard-0000/
            snap-<gen>.bin   # checksummed snapshot (dictionary + triples)
            wal-<gen>.log    # ops since snap-<gen>
        shard-0001/ ...

See :mod:`repro.persistence.wal` for the record format,
:mod:`repro.persistence.snapshot` for the snapshot format and
:mod:`repro.persistence.store` for segment rotation and recovery.
"""

from repro.persistence.dead_letter import DeadLetterJournal
from repro.persistence.snapshot import load_snapshot, restore_graph, write_snapshot
from repro.persistence.store import (
    ShardPersistence,
    StoreMetadataError,
    StorePersistence,
)
from repro.persistence.wal import GraphWal, WriteAheadLog, replay_wal

__all__ = [
    "DeadLetterJournal",
    "GraphWal",
    "ShardPersistence",
    "StoreMetadataError",
    "StorePersistence",
    "WriteAheadLog",
    "load_snapshot",
    "replay_wal",
    "restore_graph",
    "write_snapshot",
]
