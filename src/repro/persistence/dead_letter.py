"""On-disk dead-letter journal for records the pipeline gives up on.

Two producers write here: :class:`~repro.core.pipeline.ValidateStage`
(records rejected with a reason, instead of vanishing) and the process
backend's poison-batch quarantine (a batch whose replay keeps crashing
its worker after ``replay_budget`` attempts, written out with the error
and shard so an operator can replay or discard it).

The journal is append-only JSONL under ``data_dir/dead-letter.jsonl``
(one fsynced line per entry — losing the record *and* the evidence it
existed would defeat the point).  Without a ``data_dir`` it degrades to
an in-memory list so quarantine and validation accounting still work in
ephemeral deployments.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Iterable, List, Optional

JOURNAL_NAME = "dead-letter.jsonl"


class DeadLetterJournal:
    """Append-only journal of quarantined batches and rejected records."""

    def __init__(self, directory: Optional[str] = None):
        self.path: Optional[Path] = None
        self._memory: List[dict] = []
        self._persisted = 0
        if directory is not None:
            root = Path(directory)
            root.mkdir(parents=True, exist_ok=True)
            self.path = root / JOURNAL_NAME
            if self.path.exists():
                self._persisted = sum(
                    1 for line in self.path.read_text().splitlines() if line.strip()
                )

    def record(
        self,
        kind: str,
        reason: str,
        shard: Optional[int] = None,
        records: Iterable[dict] = (),
    ) -> dict:
        """Append one entry; returns the entry dict."""
        entry = {
            "kind": kind,
            "reason": reason,
            "shard": shard,
            "records": list(records),
            "wall_time": time.time(),
        }
        if self.path is not None:
            line = json.dumps(entry, sort_keys=True, default=str)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            self._persisted += 1
        else:
            self._memory.append(entry)
        return entry

    def entries(self) -> List[dict]:
        """All entries (including ones persisted by earlier processes)."""
        if self.path is None:
            return list(self._memory)
        if not self.path.exists():
            return []
        return [
            json.loads(line)
            for line in self.path.read_text().splitlines()
            if line.strip()
        ]

    def __len__(self) -> int:
        return self._persisted if self.path is not None else len(self._memory)
