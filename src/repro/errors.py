"""The typed error hierarchy of the public API surface.

Every error the middleware intends callers to handle derives from
:class:`ReproError` and carries a stable machine-readable ``code``.  The
code — not the Python class — is the contract: the serving gateway maps
codes to HTTP statuses in one table (:data:`repro.serving.gateway.STATUS_BY_CODE`),
wire clients switch on the code string, and refactoring an exception's
class or module never changes what a client observes.

Two pre-existing exceptions are re-based onto this hierarchy without
breaking their old contracts: :class:`repro.core.faults.ShardUnavailableError`
and :class:`repro.persistence.store.StoreMetadataError` both keep
``RuntimeError`` in their bases, so ``except RuntimeError`` call sites
written before the hierarchy existed still catch them.

This module is imported by low-level packages (``persistence``, ``core``)
and must stay dependency-free: stdlib only, no repro imports.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base of every intentional, caller-visible middleware error.

    ``code`` is a stable snake_case identifier; subclasses override the
    class attribute (or pass ``code=`` for one-off instances).  ``detail``
    is an optional structured payload (a JSON-safe dict) the gateway
    forwards to wire clients alongside the message.
    """

    code: str = "internal"

    def __init__(
        self,
        message: str = "",
        *,
        code: Optional[str] = None,
        detail: Optional[dict] = None,
    ):
        super().__init__(message)
        if code is not None:
            self.code = code
        self.detail = dict(detail) if detail else {}

    def to_payload(self) -> dict:
        """The JSON-safe wire form served by the gateway's error handler."""
        payload = {"error": self.code, "message": str(self)}
        if self.detail:
            payload["detail"] = self.detail
        return payload


class BadRequestError(ReproError):
    """The request itself is malformed (bad JSON, missing fields)."""

    code = "bad_request"


class NotFoundError(ReproError):
    """The named route / view / resource does not exist."""

    code = "not_found"


class PayloadTooLargeError(ReproError):
    """The request body exceeds the gateway's configured size limit."""

    code = "payload_too_large"


class RateLimitedError(ReproError):
    """The client exhausted its token bucket; retry after ``retry_after``."""

    code = "rate_limited"

    def __init__(self, message: str = "rate limit exceeded", *, retry_after: float = 1.0):
        super().__init__(message, detail={"retry_after": round(retry_after, 3)})
        self.retry_after = retry_after


class QueryError(ReproError):
    """A SPARQL query failed to parse or evaluate.

    The evaluator raises plain :class:`ValueError` for malformed query
    text (a library-level contract predating this hierarchy); boundary
    code wraps those with :meth:`wrap` so wire clients see a stable code
    instead of a 500.
    """

    code = "query_error"

    @classmethod
    def wrap(cls, exc: Exception) -> "QueryError":
        return cls(str(exc) or exc.__class__.__name__)


class ValidationRejectedError(ReproError):
    """An ingest payload was rejected before reaching the pipeline.

    Records the pipeline itself drops (non-finite values, unresolvable
    vendor terms) do *not* raise — they are journaled to the dead-letter
    file and counted in the :class:`~repro.core.api.IngestReceipt`.  This
    error is for payloads too malformed to build records from at all.
    """

    code = "validation_rejected"
