"""Stochastic climate generator with embedded drought episodes.

Implements the :class:`~repro.sensors.modality.EnvironmentModel` protocol:
given a canonical property, a location and a simulated time it returns the
ground-truth value.  The generator composes:

* a seasonal cycle calibrated to a semi-arid summer-rainfall climate
  (hot wet summers around January, cold dry winters around July);
* day-to-day stochastic weather (rain occurs in events, temperature has
  autocorrelated anomalies), deterministic per (seed, day) so that every
  sensor sampling the same place and day sees the same truth;
* slow-responding land-surface state: soil moisture, water level and
  vegetation index follow a water-balance-like recursion driven by rainfall
  and temperature, which gives drought its characteristic lag structure;
* optional :class:`DroughtEpisode` periods during which rainfall is
  suppressed and temperature elevated -- the ground truth the forecasting
  experiments score against;
* mild spatial variation so different districts are not identical.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.streams.scheduler import DAY


@dataclass(frozen=True)
class DroughtEpisode:
    """A ground-truth drought period embedded in the synthetic climate.

    ``severity`` in ``(0, 1]`` scales how strongly rainfall is suppressed
    (1.0 means essentially no rain at the peak).  Episodes ramp in and out
    over ``ramp_days`` so the onset is gradual, as real droughts are.
    """

    start_day: float
    end_day: float
    severity: float = 0.8
    ramp_days: float = 20.0

    def __post_init__(self) -> None:
        if self.end_day <= self.start_day:
            raise ValueError("episode end must be after start")
        if not 0.0 < self.severity <= 1.0:
            raise ValueError("severity must be in (0, 1]")

    def intensity(self, day: float) -> float:
        """Suppression intensity in [0, severity] at ``day``."""
        if day < self.start_day or day > self.end_day:
            return 0.0
        ramp = max(1e-9, self.ramp_days)
        rise = min(1.0, (day - self.start_day) / ramp)
        fall = min(1.0, (self.end_day - day) / ramp)
        return self.severity * min(rise, fall)

    def contains(self, day: float) -> bool:
        """Whether ``day`` falls inside the episode."""
        return self.start_day <= day <= self.end_day


class ClimateGenerator:
    """Ground-truth climate for a Free State-like region.

    Parameters
    ----------
    seed:
        Controls all stochastic weather; two generators with the same seed
        and episodes produce identical climates.
    episodes:
        Drought episodes to embed (ground truth for the experiments).
    start_day_of_year:
        Calendar day-of-year corresponding to simulated day 0 (default 182,
        i.e. the start of July -- the dry season).
    mean_annual_rainfall_mm:
        Annual rainfall total the generator is calibrated to (Free State
        averages roughly 400-600 mm).
    """

    def __init__(
        self,
        seed: int = 0,
        episodes: Optional[Sequence[DroughtEpisode]] = None,
        start_day_of_year: float = 182.0,
        mean_annual_rainfall_mm: float = 550.0,
    ):
        self.seed = seed
        self.episodes: List[DroughtEpisode] = list(episodes or [])
        self.start_day_of_year = start_day_of_year
        self.mean_annual_rainfall_mm = mean_annual_rainfall_mm
        self._state_cache: Dict[Tuple[int, int], Dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    # deterministic per-day randomness
    # ------------------------------------------------------------------ #

    def _uniform(self, day: int, tag: str, cell: int = 0) -> float:
        """A deterministic uniform(0,1) draw keyed by (seed, day, tag, cell)."""
        key = f"{self.seed}:{day}:{tag}:{cell}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        return int.from_bytes(digest, "big") / float(2**64)

    def _gauss(self, day: int, tag: str, cell: int = 0) -> float:
        """A deterministic standard-normal draw (Box-Muller)."""
        u1 = max(1e-12, self._uniform(day, tag + ":u1", cell))
        u2 = self._uniform(day, tag + ":u2", cell)
        return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)

    @staticmethod
    def _cell_for(location: Tuple[float, float]) -> int:
        """Map a location to a coarse spatial cell (~0.2 degree grid)."""
        lat, lon = location
        return int(round(lat * 5)) * 10_000 + int(round(lon * 5))

    # ------------------------------------------------------------------ #
    # seasonal structure
    # ------------------------------------------------------------------ #

    def day_of_year(self, day: float) -> float:
        """Calendar day-of-year for a simulated day index."""
        return (self.start_day_of_year + day) % 365.0

    def _season_phase(self, day: float) -> float:
        """+1 at the height of summer (mid January), -1 in mid winter."""
        doy = self.day_of_year(day)
        return math.cos(2.0 * math.pi * (doy - 15.0) / 365.0)

    def drought_intensity(self, day: float) -> float:
        """Combined suppression intensity of all episodes at ``day``."""
        if not self.episodes:
            return 0.0
        return min(1.0, sum(episode.intensity(day) for episode in self.episodes))

    def in_drought(self, day: float) -> bool:
        """Whether ``day`` lies inside any embedded episode."""
        return any(episode.contains(day) for episode in self.episodes)

    # ------------------------------------------------------------------ #
    # primitive weather fields
    # ------------------------------------------------------------------ #

    def daily_rainfall(self, day: float, location: Tuple[float, float] = (0.0, 0.0)) -> float:
        """Rain depth (mm) falling on the given simulated day."""
        day_index = int(math.floor(day))
        cell = self._cell_for(location)
        phase = self._season_phase(day_index)
        # wet-day probability and mean event depth follow the season
        wet_probability = 0.12 + 0.23 * max(0.0, phase)
        mean_depth = 4.0 + 10.0 * max(0.0, phase)
        suppression = self.drought_intensity(day_index)
        wet_probability *= 1.0 - 0.85 * suppression
        mean_depth *= 1.0 - 0.6 * suppression
        if self._uniform(day_index, "wet", cell) >= wet_probability:
            return 0.0
        # exponential event depths
        draw = max(1e-12, self._uniform(day_index, "depth", cell))
        depth = -mean_depth * math.log(draw)
        return round(min(depth, 180.0), 2)

    def daily_mean_temperature(self, day: float, location: Tuple[float, float] = (0.0, 0.0)) -> float:
        """Daily mean air temperature (degC)."""
        day_index = int(math.floor(day))
        cell = self._cell_for(location)
        phase = self._season_phase(day_index)
        seasonal = 16.0 + 8.5 * phase
        anomaly = 1.8 * self._gauss(day_index, "temp", cell)
        heat_from_drought = 3.0 * self.drought_intensity(day_index)
        lat, _ = location
        altitude_adjust = -0.4 * (abs(lat) - 29.0)
        return seasonal + anomaly + heat_from_drought + altitude_adjust

    # ------------------------------------------------------------------ #
    # land-surface state (lagged response)
    # ------------------------------------------------------------------ #

    def _surface_state(self, day_index: int, cell: int) -> Dict[str, float]:
        """Soil moisture / water level / NDVI state after ``day_index`` days.

        Computed by a daily water-balance recursion from day 0 and cached
        per (cell, day); the recursion is cheap (O(days)) and evaluated
        lazily from the most recent cached day.
        """
        cached = self._state_cache.get((cell, day_index))
        if cached is not None:
            return cached
        # find the latest cached earlier day to continue from
        start_index = -1
        state = {"soil_moisture": 24.0, "water_level": 2600.0, "vegetation_index": 0.5}
        for candidate in range(day_index - 1, -1, -1):
            cached_state = self._state_cache.get((cell, candidate))
            if cached_state is not None:
                start_index = candidate
                state = dict(cached_state)
                break
        location = (cell // 10_000 / 5.0, (cell % 10_000) / 5.0)
        for current in range(start_index + 1, day_index + 1):
            rain = self.daily_rainfall(float(current), location)
            temperature = self.daily_mean_temperature(float(current), location)
            evapotranspiration = max(0.5, 0.28 * temperature)
            soil = state["soil_moisture"]
            soil += 0.55 * rain - 0.16 * evapotranspiration
            soil = max(2.0, min(45.0, soil))
            water = state["water_level"]
            # inflow from rain, losses to evaporation/abstraction, and a slow
            # relaxation towards the long-term storage level so interannual
            # spread stays moderate in non-drought years
            water += 6.0 * rain - 1.3 * evapotranspiration - 2.0 - 0.02 * (water - 2600.0)
            water = max(200.0, min(6000.0, water))
            ndvi = state["vegetation_index"]
            target = 0.15 + 0.012 * soil
            ndvi += 0.05 * (target - ndvi)
            ndvi = max(0.05, min(0.9, ndvi))
            state = {
                "soil_moisture": soil,
                "water_level": water,
                "vegetation_index": ndvi,
            }
            if current % 5 == 0 or current == day_index:
                self._state_cache[(cell, current)] = dict(state)
        self._state_cache[(cell, day_index)] = dict(state)
        return state

    # ------------------------------------------------------------------ #
    # EnvironmentModel protocol
    # ------------------------------------------------------------------ #

    def true_value(
        self, property_key: str, location: Tuple[float, float], timestamp: float
    ) -> float:
        """Ground-truth value of ``property_key`` at ``location`` / ``timestamp``."""
        day = timestamp / DAY
        day_index = int(math.floor(day))
        cell = self._cell_for(location)
        hour = (timestamp % DAY) / 3600.0

        if property_key == "rainfall":
            # report the daily total spread over the wet hours of the day
            return self.daily_rainfall(day, location)
        if property_key == "air_temperature":
            mean = self.daily_mean_temperature(day, location)
            diurnal = 6.5 * math.sin(math.pi * (hour - 7.0) / 14.0) if 7.0 <= hour <= 21.0 else -4.0
            return mean + diurnal
        if property_key == "soil_temperature":
            return self.daily_mean_temperature(day, location) * 0.9 + 2.0
        if property_key == "relative_humidity":
            rain = self.daily_rainfall(day, location)
            base = 52.0 + 20.0 * max(0.0, self._season_phase(day)) + (18.0 if rain > 0 else 0.0)
            base -= 22.0 * self.drought_intensity(day)
            return max(8.0, min(98.0, base + 4.0 * self._gauss(day_index, "rh", cell)))
        if property_key == "wind_speed":
            return max(0.0, 3.2 + 1.5 * self._gauss(day_index, "wind", cell))
        if property_key == "wind_direction":
            return (self._uniform(day_index, "winddir", cell) * 360.0)
        if property_key == "solar_radiation":
            phase = self._season_phase(day)
            clear_sky = 420.0 + 260.0 * phase
            cloud_factor = 0.45 if self.daily_rainfall(day, location) > 0 else 1.0
            if hour < 6.0 or hour > 19.0:
                return 0.0
            elevation = math.sin(math.pi * (hour - 6.0) / 13.0)
            return max(0.0, clear_sky * cloud_factor * elevation)
        if property_key == "barometric_pressure":
            return 1013.0 - 10.0 * max(0.0, self._season_phase(day)) + 3.0 * self._gauss(day_index, "pres", cell)
        if property_key == "evapotranspiration":
            return max(0.5, 0.28 * self.daily_mean_temperature(day, location))
        if property_key in ("soil_moisture", "water_level", "vegetation_index"):
            return self._surface_state(day_index, cell)[property_key]
        raise KeyError(f"unknown property key: {property_key!r}")

    # ------------------------------------------------------------------ #
    # bulk series for the forecasting layer
    # ------------------------------------------------------------------ #

    def daily_series(
        self,
        property_key: str,
        days: int,
        location: Tuple[float, float] = (-29.1, 26.2),
        start_day: int = 0,
    ) -> np.ndarray:
        """Ground-truth daily series of ``property_key`` (noon values)."""
        values = [
            self.true_value(property_key, location, (start_day + d) * DAY + 12 * 3600.0)
            for d in range(days)
        ]
        return np.asarray(values, dtype=float)

    def drought_truth(self, days: int, start_day: int = 0) -> np.ndarray:
        """Boolean ground-truth drought mask for ``days`` simulated days."""
        return np.asarray(
            [self.in_drought(float(start_day + d)) for d in range(days)], dtype=bool
        )
