"""Synthetic workloads: climate ground truth and deployment scenarios.

The paper's test bed is the Free State Province of South Africa -- a
semi-arid, summer-rainfall region.  Since the real AfriCRID traces are not
available, :mod:`repro.workloads.climate` generates a stochastic but
statistically plausible climate for the region, with drought episodes
embedded at known times so forecast skill can be scored against ground
truth, and :mod:`repro.workloads.scenario` wires the climate to a full
deployment (districts, motes, stations, observers).
"""

from repro.workloads.climate import ClimateGenerator, DroughtEpisode
from repro.workloads.scenario import DeploymentScenario, District, build_free_state_scenario

__all__ = [
    "ClimateGenerator",
    "DroughtEpisode",
    "District",
    "DeploymentScenario",
    "build_free_state_scenario",
]
