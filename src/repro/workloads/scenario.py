"""Deployment scenarios: districts, motes, stations and observers.

A :class:`DeploymentScenario` wires the synthetic climate to a concrete
sensing deployment for one or more Free State districts, mirroring the
paper's implementation outlook: a WSN of Waspmote-style motes per district,
a couple of conventional weather stations, a pool of mobile observers who
report both coarse weather and IK indicator sightings, and the SMS gateway
that uploads everything to the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ik.indicators import INDICATOR_CATALOGUE, IndicatorActivityModel
from repro.sensors.heterogeneity import NamingProfile, VENDOR_PROFILES, assign_profiles
from repro.sensors.mobile import MobileObserver
from repro.sensors.network import WirelessSensorNetwork
from repro.sensors.node import SensorNode
from repro.sensors.weather_station import WeatherStation
from repro.workloads.climate import ClimateGenerator, DroughtEpisode

#: Modalities attached to a standard agricultural mote.
MOTE_MODALITIES = [
    "air_temperature",
    "soil_moisture",
    "soil_temperature",
    "rainfall",
    "relative_humidity",
]

#: Extra modalities carried by every fourth mote (river / vegetation sites).
EXTENDED_MODALITIES = ["water_level", "vegetation_index"]


@dataclass
class District:
    """One administrative district in the scenario."""

    name: str
    centre: Tuple[float, float]
    network: WirelessSensorNetwork
    stations: List[WeatherStation] = field(default_factory=list)
    observers: List[MobileObserver] = field(default_factory=list)

    @property
    def mote_count(self) -> int:
        """Number of motes deployed in the district."""
        return len(self.network.nodes)


@dataclass
class DeploymentScenario:
    """A full multi-district deployment bound to one climate realisation."""

    climate: ClimateGenerator
    districts: List[District]
    indicator_model: IndicatorActivityModel
    seed: int = 0

    def district(self, name: str) -> District:
        """Look up a district by name (raises ``KeyError`` if absent)."""
        for district in self.districts:
            if district.name == name:
                return district
        raise KeyError(f"unknown district: {name!r}")

    @property
    def total_motes(self) -> int:
        """Total motes across every district."""
        return sum(d.mote_count for d in self.districts)

    @property
    def total_observers(self) -> int:
        """Total mobile observers across every district."""
        return sum(len(d.observers) for d in self.districts)


#: Approximate centres of a few Free State districts (lat, lon).
FREE_STATE_DISTRICTS: Dict[str, Tuple[float, float]] = {
    "Mangaung": (-29.12, 26.22),
    "Xhariep": (-30.05, 25.45),
    "Lejweleputswa": (-28.35, 26.62),
    "Thabo Mofutsanyana": (-28.52, 28.82),
    "Fezile Dabi": (-27.65, 27.23),
}


def _build_district(
    name: str,
    centre: Tuple[float, float],
    climate: ClimateGenerator,
    indicator_model: IndicatorActivityModel,
    motes_per_district: int,
    observers_per_district: int,
    stations_per_district: int,
    seed: int,
    mote_failure_rate_per_day: float,
) -> District:
    network = WirelessSensorNetwork(
        sink_id=f"{name}-sink", sink_location=centre, max_link_range_m=700.0
    )
    profiles = assign_profiles(motes_per_district, seed=seed)
    for index in range(motes_per_district):
        # place motes on a loose grid around the district centre
        row, col = divmod(index, 4)
        location = (
            centre[0] + (row - 1.5) * 0.004,
            centre[1] + (col - 1.5) * 0.004,
        )
        modalities = list(MOTE_MODALITIES)
        if index % 4 == 0:
            modalities += EXTENDED_MODALITIES
        node = SensorNode(
            node_id=f"{name}-mote-{index:02d}",
            location=location,
            modalities=modalities,
            environment=climate,
            profile=profiles[index],
            seed=seed * 1000 + index,
            failure_rate_per_day=mote_failure_rate_per_day,
        )
        network.add_node(node)

    stations = [
        WeatherStation(
            station_id=f"{name}-station-{index}",
            location=(centre[0] + 0.05 * index, centre[1] - 0.05 * index),
            environment=climate,
            profile=VENDOR_PROFILES["saws_station" if index % 2 == 0 else "german_gauge"],
            seed=seed * 100 + index,
        )
        for index in range(stations_per_district)
    ]

    indicator_keys = list(INDICATOR_CATALOGUE)
    observers = []
    for index in range(observers_per_district):
        known = [
            indicator_keys[(index + offset) % len(indicator_keys)]
            for offset in range(6)
        ]
        observers.append(
            MobileObserver(
                observer_id=f"{name}-farmer-{index:03d}",
                location=(centre[0] + 0.01 * (index % 5), centre[1] + 0.01 * (index // 5)),
                environment=climate,
                indicator_activity=indicator_model,
                indicators=known,
                seed=seed * 10 + index,
            )
        )
    return District(
        name=name, centre=centre, network=network, stations=stations, observers=observers
    )


def build_free_state_scenario(
    districts: Optional[List[str]] = None,
    motes_per_district: int = 12,
    observers_per_district: int = 10,
    stations_per_district: int = 2,
    episodes: Optional[List[DroughtEpisode]] = None,
    seed: int = 0,
    mote_failure_rate_per_day: float = 0.0002,
) -> DeploymentScenario:
    """Build the default Free State deployment scenario.

    Parameters mirror the knobs the benchmarks sweep; the default embeds a
    single substantial drought episode in the second half of the first
    simulated year.
    """
    if episodes is None:
        episodes = [DroughtEpisode(start_day=160.0, end_day=300.0, severity=0.85)]
    climate = ClimateGenerator(seed=seed, episodes=episodes)
    # Indicator visibility responds to anomalies against the seasonal normal
    # -- the same weather realisation *without* the drought episodes, i.e.
    # what the local community regards as a normal year -- so ordinary
    # winter dryness does not trigger the dry-season indicators while a
    # failing rainy season does.
    seasonal_normal = ClimateGenerator(seed=seed)
    indicator_model = IndicatorActivityModel(climate, reference=seasonal_normal)
    chosen = districts or list(FREE_STATE_DISTRICTS)[:3]
    built = [
        _build_district(
            name,
            FREE_STATE_DISTRICTS.get(name, (-29.0, 26.5)),
            climate,
            indicator_model,
            motes_per_district,
            observers_per_district,
            stations_per_district,
            seed + index,
            mote_failure_rate_per_day,
        )
        for index, name in enumerate(chosen)
    ]
    return DeploymentScenario(
        climate=climate, districts=built, indicator_model=indicator_model, seed=seed
    )
