"""E7 -- dissemination of the drought vulnerability index (paper §2, §6)."""

import pytest

from benchmarks.conftest import print_table
from repro.dews.alerts import build_alerts
from repro.dews.dissemination import DisseminationHub
from repro.forecasting.fusion import Forecast
from repro.forecasting.vulnerability import compute_vulnerability
from repro.workloads.scenario import FREE_STATE_DISTRICTS


def _alert_batch(issue_day):
    probabilities = {
        "Mangaung": 0.55, "Xhariep": 0.82, "Lejweleputswa": 0.66,
        "Thabo Mofutsanyana": 0.38, "Fezile Dabi": 0.45,
    }
    forecasts = {
        district: Forecast(issue_day=issue_day, lead_time_days=20.0,
                           drought_probability=probability, confidence=0.8,
                           method="fusion", area=district)
        for district, probability in probabilities.items()
    }
    vulnerability = {v.district: v for v in compute_vulnerability(probabilities)}
    return build_alerts(forecasts, vulnerability)


def test_bench_dissemination_throughput(benchmark):
    """Cost of fanning one alert batch out to every channel."""
    hub = DisseminationHub(seed=1)
    alerts = _alert_batch(100.0)
    benchmark(lambda: hub.disseminate(alerts))


def test_bench_dissemination_table(benchmark):
    """The E7 table: per-channel delivery ratio, latency and reach."""
    hub = DisseminationHub(seed=3)
    benchmark(lambda: _alert_batch(0.0))
    for week in range(30):
        alerts = [a for a in _alert_batch(float(week * 7)) if a.actionable]
        hub.disseminate(alerts)

    rows = []
    for name, stats in hub.statistics().items():
        rows.append({
            "channel": name,
            "attempted": stats.attempted,
            "delivery_ratio": round(stats.delivery_ratio, 3),
            "mean_latency_s": round(stats.mean_latency, 1),
            "recipients": stats.recipients_reached,
        })
    print_table("E7: dissemination channels", rows)

    by_name = {row["channel"]: row for row in rows}
    # every channel delivers the vast majority of actionable alerts
    for row in rows:
        assert row["delivery_ratio"] > 0.85
    # the ordering of latencies follows the channel characteristics
    assert by_name["semantic_web"]["mean_latency_s"] < by_name["mobile_app"]["mean_latency_s"]
    assert by_name["mobile_app"]["mean_latency_s"] < by_name["ip_radio"]["mean_latency_s"]
    # radio reaches the most people, the semantic web endpoint the fewest
    assert by_name["ip_radio"]["recipients"] > by_name["mobile_app"]["recipients"]
    assert by_name["semantic_web"]["recipients"] < by_name["smart_billboard"]["recipients"]


def test_bench_vulnerability_ranking(benchmark):
    """The vulnerability index orders districts by exposure x sensitivity."""
    alerts = {alert.district: alert for alert in benchmark(lambda: _alert_batch(0.0))}
    # Xhariep combines the highest probability with the most vulnerable profile
    most_vulnerable = max(alerts.values(), key=lambda a: a.vulnerability)
    assert most_vulnerable.district == "Xhariep"
    assert set(alerts) == set(FREE_STATE_DISTRICTS)
