"""Durability cost: WAL append overhead and recovery time.

Persistence must be cheap enough to leave on: the write-ahead log rides
every graph mutation of every shard, so its append path is the one place
a durability subsystem can tax the whole pipeline.  The benchmark ingests
the same 10k-record stream into a plain middleware and into one with
``data_dir`` set (``fsync="batch"``: one flush+fsync per shard per ingest
batch, the default policy) and asserts the process-CPU overhead stays
under 20%.  Snapshotting is disabled for that comparison (a huge
``snapshot_interval``) so the number isolates the per-append cost rather
than amortised checkpoint work.

The second benchmark measures what the durability actually buys: cold
recovery time (snapshot load + WAL tail replay across all shards) at
growing store sizes, recorded so regressions in the replay path show up
as a trend break.

Each test appends its rows to ``BENCH_durability.json``, the summary
artifact the CI bench-smoke job uploads via the ``BENCH_*.json`` glob.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path
from typing import List, Optional

from benchmarks.conftest import print_table
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.ontologies.library import build_unified_ontology
from repro.persistence import StorePersistence
from repro.streams.messages import ObservationRecord

ARTIFACT = Path("BENCH_durability.json")

DISTRICTS = [f"district{index}" for index in range(8)]
PROPERTIES = [
    ("soil moisture", "percent", 20.0),
    ("rainfall", "mm", 3.0),
    ("air temperature", "degC", 18.0),
    ("relative humidity", "percent", 50.0),
]

SHARDS = 4
BATCHES = 10
RECORDS_PER_BATCH = 1_000
TOTAL_RECORDS = BATCHES * RECORDS_PER_BATCH  # 10_000
# typical measured cost is ~10%; the cap leaves headroom for the residual
# pair noise that survives the drift-cancelling median (see the overhead
# test's docstring) while still failing on a doubling of the append cost
MAX_OVERHEAD = 0.20


def _record_artifact(section: str, payload) -> None:
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _batch(batch_index: int) -> List[ObservationRecord]:
    records = []
    for index in range(RECORDS_PER_BATCH):
        sequence = batch_index * RECORDS_PER_BATCH + index
        district = DISTRICTS[sequence % len(DISTRICTS)]
        name, unit, base = PROPERTIES[sequence % len(PROPERTIES)]
        records.append(
            ObservationRecord(
                source_id=f"{district}-mote-{sequence % 5:02d}",
                source_kind="wsn_mote",
                property_name=name,
                value=base + (sequence % 9),
                unit=unit,
                timestamp=600.0 * sequence,
                location=(1.0, 2.0),
                metadata={"area": district},
            )
        )
    return records


def _build(data_dir: Optional[Path]) -> SemanticMiddleware:
    return SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(
            cep_per_record=False,
            shards=SHARDS,
            data_dir=str(data_dir) if data_dir is not None else None,
            wal_fsync="batch",
            # isolate the append cost: no checkpoint inside the timed run
            snapshot_interval=10_000_000,
        ),
    )


def test_bench_wal_append_overhead(tmp_path):
    """Journalling every mutation must cost < 20% on a 10k-record ingest.

    The comparison interleaves the two sides at *batch* granularity: a
    baseline and a durable middleware ingest the same stream side by
    side, each batch timed on both (order alternating per batch, so a
    systematic order effect cannot favour one side), and the overhead
    is the median of the per-batch durable/baseline CPU ratios pooled
    across three repetitions.  The assertion uses process-CPU time: the
    WAL's cost is the CPU it adds to the append path, and CPU time is
    immune to scheduler preemption and steal.  It is *not* immune to
    frequency scaling — on a shared host the effective clock drifts by
    tens of percent on a seconds timescale, which inflates every sample
    taken while the clock is low and skews any per-run or per-side
    aggregate (including minima).  The two timings of one batch are
    ~100 ms apart, well inside any drift window, so the multiplicative
    noise divides out of each ratio and the pooled median shrugs off
    the batches that straddle a frequency step.  Wall time is reported
    alongside for transparency.
    """
    reps = 3
    baseline_cpu_total = durable_cpu_total = 0.0
    baseline_wall_total = durable_wall_total = 0.0
    cpu_ratios, wall_ratios = [], []
    for rep in range(reps):
        baseline = _build(None)
        durable = _build(tmp_path / f"store{rep}")
        # sweep then pause the collector around the timed region (the
        # standard pyperf discipline): a gen-2 pass scheduled mid-batch
        # costs tens of milliseconds and would swamp a per-batch sample
        gc.collect()
        gc.disable()
        try:
            for batch_index in range(BATCHES):
                records = _batch(batch_index)
                sides = [("baseline", baseline), ("durable", durable)]
                if batch_index % 2:
                    sides.reverse()
                seconds = {}
                for side, middleware in sides:
                    wall = time.perf_counter()
                    cpu = time.process_time()
                    middleware.ingest_batch(records)
                    seconds[side] = (
                        time.perf_counter() - wall,
                        time.process_time() - cpu,
                    )
                baseline_wall_total += seconds["baseline"][0]
                baseline_cpu_total += seconds["baseline"][1]
                durable_wall_total += seconds["durable"][0]
                durable_cpu_total += seconds["durable"][1]
                wall_ratios.append(seconds["durable"][0] / seconds["baseline"][0])
                cpu_ratios.append(seconds["durable"][1] / seconds["baseline"][1])
        finally:
            gc.enable()
        baseline.close()
        durable.close()

    def median(samples):
        return sorted(samples)[len(samples) // 2]

    baseline_seconds = baseline_cpu_total / reps
    durable_seconds = durable_cpu_total / reps
    overhead = median(cpu_ratios) - 1.0
    wall_overhead = median(wall_ratios) - 1.0

    wal_bytes = sum(
        wal_path.stat().st_size
        for wal_path in (tmp_path / "store0").glob("shard-*/wal-*.log")
    )
    print_table(
        f"WAL append overhead: {TOTAL_RECORDS} records, {SHARDS} shards, "
        "fsync=batch",
        [
            {"config": "no persistence", "cpu_seconds": round(baseline_seconds, 2),
             "records_per_s": int(TOTAL_RECORDS / baseline_seconds)},
            {"config": "wal", "cpu_seconds": round(durable_seconds, 2),
             "records_per_s": int(TOTAL_RECORDS / durable_seconds)},
            {"config": "overhead", "cpu_seconds": f"{overhead:+.1%}",
             "records_per_s": f"(wall {wall_overhead:+.1%})"},
        ],
    )
    _record_artifact("wal_append_overhead", {
        "records": TOTAL_RECORDS,
        "shards": SHARDS,
        "fsync": "batch",
        "baseline_cpu_seconds": baseline_seconds,
        "durable_cpu_seconds": durable_seconds,
        "overhead": overhead,
        "baseline_wall_seconds": baseline_wall_total / reps,
        "durable_wall_seconds": durable_wall_total / reps,
        "wall_overhead": wall_overhead,
        "wal_bytes": wal_bytes,
        "wal_bytes_per_record": wal_bytes / TOTAL_RECORDS,
    })
    assert overhead < MAX_OVERHEAD, (
        f"WAL append overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%}"
    )


def test_bench_recovery_time_vs_store_size(tmp_path):
    """Cold recovery (snapshot load + WAL replay) at growing store sizes."""
    data_dir = tmp_path / "store"
    durable = _build(data_dir)
    rows = []
    for batch_index in range(BATCHES):
        durable.ingest_batch(_batch(batch_index))
        if (batch_index + 1) * RECORDS_PER_BATCH not in (2_000, 6_000, 10_000):
            continue
        triples = sum(len(graph) for graph in durable.ontology_layer.graphs)
        start = time.perf_counter()
        recovery = StorePersistence(str(data_dir))
        graphs = recovery.recover_all(expected_shards=SHARDS)
        seconds = time.perf_counter() - start
        assert sum(len(graph) for graph in graphs) == triples
        recovery.close()
        rows.append({
            "records": (batch_index + 1) * RECORDS_PER_BATCH,
            "triples": triples,
            "recovery_seconds": round(seconds, 3),
            "triples_per_s": int(triples / seconds) if seconds else 0,
        })
    # a mid-life checkpoint folds the WAL into the snapshot: recovery of
    # the same store afterwards replays (almost) nothing
    durable.ontology_layer.checkpoint()
    start = time.perf_counter()
    recovery = StorePersistence(str(data_dir))
    graphs = recovery.recover_all(expected_shards=SHARDS)
    checkpointed_seconds = time.perf_counter() - start
    recovery.close()
    rows.append({
        "records": TOTAL_RECORDS,
        "triples": sum(len(graph) for graph in graphs),
        "recovery_seconds": round(checkpointed_seconds, 3),
        "triples_per_s": "(post-checkpoint)",
    })
    print_table("Cold recovery time vs store size", rows)
    _record_artifact("recovery_time", {"milestones": rows})
    durable.close()
