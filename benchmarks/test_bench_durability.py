"""Durability cost: WAL append overhead and recovery time.

Persistence must be cheap enough to leave on: the write-ahead log rides
every graph mutation of every shard, so its append path is the one place
a durability subsystem can tax the whole pipeline.  The benchmark ingests
the same 10k-record stream into a plain middleware and into one with
``data_dir`` set (``fsync="batch"``: one flush+fsync per shard per ingest
batch, the default policy) and asserts the wall-clock overhead stays
under 15%.  Snapshotting is disabled for that comparison (a huge
``snapshot_interval``) so the number isolates the per-append cost rather
than amortised checkpoint work.

The second benchmark measures what the durability actually buys: cold
recovery time (snapshot load + WAL tail replay across all shards) at
growing store sizes, recorded so regressions in the replay path show up
as a trend break.

Each test appends its rows to ``BENCH_durability.json``, the summary
artifact the CI bench-smoke job uploads via the ``BENCH_*.json`` glob.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path
from typing import List, Optional

from benchmarks.conftest import print_table
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.ontologies.library import build_unified_ontology
from repro.persistence import StorePersistence
from repro.streams.messages import ObservationRecord

ARTIFACT = Path("BENCH_durability.json")

DISTRICTS = [f"district{index}" for index in range(8)]
PROPERTIES = [
    ("soil moisture", "percent", 20.0),
    ("rainfall", "mm", 3.0),
    ("air temperature", "degC", 18.0),
    ("relative humidity", "percent", 50.0),
]

SHARDS = 4
BATCHES = 10
RECORDS_PER_BATCH = 1_000
TOTAL_RECORDS = BATCHES * RECORDS_PER_BATCH  # 10_000
MAX_OVERHEAD = 0.15


def _record_artifact(section: str, payload) -> None:
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _batch(batch_index: int) -> List[ObservationRecord]:
    records = []
    for index in range(RECORDS_PER_BATCH):
        sequence = batch_index * RECORDS_PER_BATCH + index
        district = DISTRICTS[sequence % len(DISTRICTS)]
        name, unit, base = PROPERTIES[sequence % len(PROPERTIES)]
        records.append(
            ObservationRecord(
                source_id=f"{district}-mote-{sequence % 5:02d}",
                source_kind="wsn_mote",
                property_name=name,
                value=base + (sequence % 9),
                unit=unit,
                timestamp=600.0 * sequence,
                location=(1.0, 2.0),
                metadata={"area": district},
            )
        )
    return records


def _build(data_dir: Optional[Path]) -> SemanticMiddleware:
    return SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(
            cep_per_record=False,
            shards=SHARDS,
            data_dir=str(data_dir) if data_dir is not None else None,
            wal_fsync="batch",
            # isolate the append cost: no checkpoint inside the timed run
            snapshot_interval=10_000_000,
        ),
    )


def _timed_ingest(middleware: SemanticMiddleware):
    """Returns (wall seconds, process-CPU seconds) for the 10k ingest.

    The collector is swept, then paused, around the timed region (the
    standard pyperf discipline): a cycle collection scheduled mid-run
    sweeps whatever garbage *any* earlier run left and a full gen-2 pass
    costs tens of milliseconds, so leaving GC enabled makes the per-side
    deltas swing far more than the WAL cost being measured.
    """
    gc.collect()
    gc.disable()
    try:
        wall = time.perf_counter()
        cpu = time.process_time()
        for batch_index in range(BATCHES):
            middleware.ingest_batch(_batch(batch_index))
        return time.perf_counter() - wall, time.process_time() - cpu
    finally:
        gc.enable()


def test_bench_wal_append_overhead(tmp_path):
    """Journalling every mutation must cost < 15% on a 10k-record ingest.

    Five interleaved baseline/durable pairs (order alternating per trial,
    so slow drift in host load cannot systematically favour one side),
    then the *per-side medians* are compared.  The assertion uses
    process-CPU time: the WAL's cost is the CPU it adds to the append
    path, and CPU time is immune to most of the scheduler noise that
    makes single wall-clock pairs on a small shared host swing by several
    percentage points; medians per side (rather than per-pair ratios)
    keep one interference spike from distorting the comparison.  Wall
    time is reported alongside for transparency.
    """
    baseline_wall, baseline_cpu = [], []
    durable_wall, durable_cpu = [], []
    for trial in range(5):
        runs = [
            (baseline_wall, baseline_cpu, None),
            (durable_wall, durable_cpu, tmp_path / f"store{trial}"),
        ]
        if trial % 2:
            runs.reverse()
        for walls, cpus, data_dir in runs:
            middleware = _build(data_dir)
            wall, cpu = _timed_ingest(middleware)
            walls.append(wall)
            cpus.append(cpu)
            middleware.close()
    baseline_seconds = sorted(baseline_cpu)[2]
    durable_seconds = sorted(durable_cpu)[2]
    overhead = durable_seconds / baseline_seconds - 1.0
    wall_overhead = sorted(durable_wall)[2] / sorted(baseline_wall)[2] - 1.0

    wal_bytes = sum(
        wal_path.stat().st_size
        for wal_path in (tmp_path / "store0").glob("shard-*/wal-*.log")
    )
    print_table(
        f"WAL append overhead: {TOTAL_RECORDS} records, {SHARDS} shards, "
        "fsync=batch",
        [
            {"config": "no persistence", "cpu_seconds": round(baseline_seconds, 2),
             "records_per_s": int(TOTAL_RECORDS / baseline_seconds)},
            {"config": "wal", "cpu_seconds": round(durable_seconds, 2),
             "records_per_s": int(TOTAL_RECORDS / durable_seconds)},
            {"config": "overhead", "cpu_seconds": f"{overhead:+.1%}",
             "records_per_s": f"(wall {wall_overhead:+.1%})"},
        ],
    )
    _record_artifact("wal_append_overhead", {
        "records": TOTAL_RECORDS,
        "shards": SHARDS,
        "fsync": "batch",
        "baseline_cpu_seconds": baseline_seconds,
        "durable_cpu_seconds": durable_seconds,
        "overhead": overhead,
        "baseline_wall_seconds": sorted(baseline_wall)[2],
        "durable_wall_seconds": sorted(durable_wall)[2],
        "wall_overhead": wall_overhead,
        "wal_bytes": wal_bytes,
        "wal_bytes_per_record": wal_bytes / TOTAL_RECORDS,
    })
    assert overhead < MAX_OVERHEAD, (
        f"WAL append overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%}"
    )


def test_bench_recovery_time_vs_store_size(tmp_path):
    """Cold recovery (snapshot load + WAL replay) at growing store sizes."""
    data_dir = tmp_path / "store"
    durable = _build(data_dir)
    rows = []
    for batch_index in range(BATCHES):
        durable.ingest_batch(_batch(batch_index))
        if (batch_index + 1) * RECORDS_PER_BATCH not in (2_000, 6_000, 10_000):
            continue
        triples = sum(len(graph) for graph in durable.ontology_layer.graphs)
        start = time.perf_counter()
        recovery = StorePersistence(str(data_dir))
        graphs = recovery.recover_all(expected_shards=SHARDS)
        seconds = time.perf_counter() - start
        assert sum(len(graph) for graph in graphs) == triples
        recovery.close()
        rows.append({
            "records": (batch_index + 1) * RECORDS_PER_BATCH,
            "triples": triples,
            "recovery_seconds": round(seconds, 3),
            "triples_per_s": int(triples / seconds) if seconds else 0,
        })
    # a mid-life checkpoint folds the WAL into the snapshot: recovery of
    # the same store afterwards replays (almost) nothing
    durable.ontology_layer.checkpoint()
    start = time.perf_counter()
    recovery = StorePersistence(str(data_dir))
    graphs = recovery.recover_all(expected_shards=SHARDS)
    checkpointed_seconds = time.perf_counter() - start
    recovery.close()
    rows.append({
        "records": TOTAL_RECORDS,
        "triples": sum(len(graph) for graph in graphs),
        "recovery_seconds": round(checkpointed_seconds, 3),
        "triples_per_s": "(post-checkpoint)",
    })
    print_table("Cold recovery time vs store size", rows)
    _record_artifact("recovery_time", {"milestones": rows})
    durable.close()
