"""E1 -- heterogeneity resolution (paper Fig. 2 / §4.1).

Measures how much of the raw-stream naming / unit heterogeneity the
semantic mediator eliminates, against a standards-only (fixed schema,
no alignment) baseline, plus the mediation throughput.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.mediator import Mediator, passthrough_mediator
from repro.ontologies.alignment import TermAligner
from repro.sensors.heterogeneity import measure_heterogeneity
from repro.workloads import DroughtEpisode, build_free_state_scenario
from repro.streams.scheduler import DAY


def _raw_records(days=10, motes=10):
    scenario = build_free_state_scenario(
        districts=["Mangaung"], motes_per_district=motes, observers_per_district=6,
        episodes=[DroughtEpisode(5, 8)], seed=17,
    )
    district = scenario.districts[0]
    records = []
    for day in range(days):
        for outcome in district.network.sample_and_deliver(day * DAY + 12 * 3600.0):
            records.extend(outcome.records)
        for station in district.stations:
            records.extend(station.report(day * DAY + 6 * 3600.0))
        for observer in district.observers:
            records.extend(observer.report_conditions(day * DAY))
            records.extend(observer.report_sightings(day * DAY))
    return records


@pytest.fixture(scope="module")
def raw_records():
    return _raw_records()


def test_bench_mediation_throughput(benchmark, raw_records):
    """Throughput of full semantic mediation (records/second in the timing)."""
    mediator = Mediator()
    benchmark(lambda: mediator.mediate_many(raw_records))


def test_bench_heterogeneity_resolution_table(benchmark, raw_records):
    """The E1 table: raw heterogeneity vs what each pipeline resolves."""
    raw_report = benchmark(lambda: measure_heterogeneity(raw_records))
    aligned_report = measure_heterogeneity(raw_records, aligner=TermAligner())

    semantic = Mediator()
    semantic_outcomes = semantic.mediate_many(raw_records)
    baseline = passthrough_mediator()
    baseline_outcomes = baseline.mediate_many(raw_records)

    rows = [
        {
            "pipeline": "raw stream",
            "records": raw_report.total_records,
            "distinct_terms": raw_report.distinct_terms,
            "distinct_units": raw_report.distinct_units,
            "resolution_rate": "-",
        },
        {
            "pipeline": "standards-only",
            "records": baseline.statistics.records_seen,
            "distinct_terms": raw_report.distinct_terms,
            "distinct_units": raw_report.distinct_units,
            "resolution_rate": round(baseline.statistics.resolution_rate, 3),
        },
        {
            "pipeline": "semantic mediator",
            "records": semantic.statistics.records_seen,
            "distinct_terms": len(aligned_report.terms_per_property),
            "distinct_units": 1,
            "resolution_rate": round(semantic.statistics.resolution_rate, 3),
        },
    ]
    print_table("E1: heterogeneity resolution", rows)

    resolved = [o for o in semantic_outcomes if o.resolved]
    assert semantic.statistics.resolution_rate > baseline.statistics.resolution_rate + 0.2
    assert semantic.statistics.resolution_rate > 0.9
    # every resolved observation is in canonical units
    assert all(o.observation.unit in ("degC", "mm", "percent", "m/s", "hPa", "W/m2", "index", "degree", "unknown")
               for o in resolved)
    assert len(baseline_outcomes) == len(semantic_outcomes)
