"""Serving front-door throughput and latency under concurrent sessions.

Boots the asyncio gateway on a loopback port and drives ≥ 50 concurrent
mixed sessions — ingest batches, SPARQL queries, health probes over HTTP
plus long-lived WebSocket subscriptions — then checks three things the
serving layer promises:

* sustained throughput with p50/p99 request latency under concurrency,
* served query results bag-equal to direct ``SemanticMiddleware`` calls
  over the same records, and
* no event-loop stall above 100 ms (engine calls run on the worker
  executor; the loop itself only shuttles bytes).

Appends its rows to ``BENCH_serving.json``, the summary artifact the CI
bench-smoke job uploads via the ``BENCH_*.json`` glob.
"""

from __future__ import annotations

import gc
import json
import threading
import time
from pathlib import Path
from typing import Dict, List

from benchmarks.conftest import print_table
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.ontologies import build_unified_ontology
from repro.serving import GatewayServer, ServingConfig
from repro.serving.client import HttpClient, WebSocketClient
from repro.serving.serialize import query_result_to_json
from repro.streams.messages import ObservationRecord

ARTIFACT = Path("BENCH_serving.json")

HTTP_SESSIONS = 52
WS_SESSIONS = 4
INGESTS_PER_SESSION = 3
QUERIES_PER_SESSION = 3
RECORDS_PER_INGEST = 4

DISTRICT_SOURCES = [f"Mangaung-mote-{index:02d}" for index in range(8)]


def _record_artifact(section: str, payload) -> None:
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _session_records(session: int) -> List[List[dict]]:
    """Each session's ingest batches, globally unique timestamps."""
    batches = []
    for ingest in range(INGESTS_PER_SESSION):
        batch = []
        for index in range(RECORDS_PER_INGEST):
            sequence = (session * INGESTS_PER_SESSION + ingest) * RECORDS_PER_INGEST + index
            batch.append({
                "source_id": DISTRICT_SOURCES[sequence % len(DISTRICT_SOURCES)],
                "source_kind": "wsn_mote",
                "property_name": "Bodenfeuchte",
                "value": 10.0 + (sequence % 30),
                "unit": "percent",
                "timestamp": 3600.0 + sequence,
                "location": [-29.1, 26.2],
            })
        batches.append(batch)
    return batches


def _subject_query(session: int) -> str:
    # a per-session variable name keeps the response cache honest: every
    # session's queries miss on first sight instead of riding one entry
    return (
        f"SELECT ?s{session} WHERE "
        f"{{ ?s{session} a <http://purl.oclc.org/NET/ssnx/ssn#Observation> }}"
    )


class _LoadResult:
    def __init__(self):
        self.lock = threading.Lock()
        self.latencies_ms: List[float] = []
        self.failures: List[str] = []
        self.requests = 0
        self.ws_messages = 0

    def record(self, elapsed: float, status: int, expect: int = 200) -> None:
        with self.lock:
            self.requests += 1
            self.latencies_ms.append(1000.0 * elapsed)
            if status != expect:
                self.failures.append(f"status {status}")


def _http_session(port: int, session: int, result: _LoadResult) -> None:
    try:
        with HttpClient("127.0.0.1", port, client_id=f"bench-{session}") as client:
            batches = _session_records(session)
            query = _subject_query(session)
            for index in range(max(INGESTS_PER_SESSION, QUERIES_PER_SESSION)):
                if index < INGESTS_PER_SESSION:
                    started = time.monotonic()
                    status, _, _ = client.post(
                        "/v1/ingest", {"records": batches[index]}
                    )
                    result.record(time.monotonic() - started, status)
                if index < QUERIES_PER_SESSION:
                    started = time.monotonic()
                    status, _, _ = client.post("/v1/query", {"query": query})
                    result.record(time.monotonic() - started, status)
            started = time.monotonic()
            status, _, _ = client.get("/v1/health")
            result.record(time.monotonic() - started, status)
    except Exception as exc:  # pragma: no cover - surfaced in the assert
        with result.lock:
            result.failures.append(repr(exc))


def _ws_session(port: int, session: int, stop: threading.Event,
                result: _LoadResult) -> None:
    try:
        with WebSocketClient(
            "127.0.0.1", port, topics=["canonical/#"],
            client_id=f"bench-ws-{session}",
        ) as subscriber:
            ready = subscriber.recv_json(timeout=10)
            assert ready and ready["type"] == "ready"
            while not stop.is_set():
                message = subscriber.recv_json(timeout=0.5)
                if message and message.get("type") == "message":
                    with result.lock:
                        result.ws_messages += 1
    except Exception as exc:  # pragma: no cover - surfaced in the assert
        with result.lock:
            result.failures.append(repr(exc))


def _percentile(sorted_values: List[float], fraction: float) -> float:
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def test_bench_serving_mixed_sessions(benchmark):
    served = SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(annotate_observations=True, broker_latency=0.0),
    )
    twin = SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(annotate_observations=True, broker_latency=0.0),
    )
    # gc discipline (same as the durability bench): in a full-suite run
    # the heap carries millions of objects from earlier harnesses, and a
    # gen-2 collection landing on the gateway's loop thread would show up
    # as loop lag that has nothing to do with serving.  Collect now, park
    # the survivors in the permanent generation, and keep automatic
    # collection off for the measured window.
    gc.collect()
    gc.freeze()
    gc.disable()

    server = GatewayServer(served, ServingConfig()).start()
    result = _LoadResult()
    timing: Dict[str, float] = {}

    def run_load():
        stop = threading.Event()
        ws_threads = [
            threading.Thread(target=_ws_session, args=(server.port, s, stop, result))
            for s in range(WS_SESSIONS)
        ]
        http_threads = [
            threading.Thread(target=_http_session, args=(server.port, s, result))
            for s in range(HTTP_SESSIONS)
        ]
        started = time.monotonic()
        for thread in ws_threads + http_threads:
            thread.start()
        for thread in http_threads:
            thread.join(timeout=300)
        timing["elapsed_s"] = time.monotonic() - started
        stop.set()
        for thread in ws_threads:
            thread.join(timeout=30)

    try:
        # scope the loop-lag high-water mark to the measured load window:
        # server boot (thread spawn, socket bind) is not serving
        server.gateway.max_loop_lag = 0.0
        benchmark.pedantic(run_load, rounds=1, iterations=1)
        assert not result.failures, result.failures[:5]

        # --- bag equality against direct calls over the same records --- #
        all_records = [
            ObservationRecord.from_dict(record)
            for session in range(HTTP_SESSIONS)
            for batch in _session_records(session)
            for record in batch
        ]
        twin_receipt = twin.ingest_batch(all_records)
        assert twin_receipt.accepted == len(all_records)
        with HttpClient("127.0.0.1", server.port) as client:
            status, served_payload, _ = client.post(
                "/v1/query", {"query": _subject_query(0)}
            )
            assert status == 200
            status, metrics, _ = client.get("/v1/metrics")
            assert status == 200
        direct_payload = query_result_to_json(twin.query(_subject_query(0)))
        served_bag = sorted(
            json.dumps(row, sort_keys=True) for row in served_payload["rows"]
        )
        direct_bag = sorted(
            json.dumps(row, sort_keys=True) for row in direct_payload["rows"]
        )
        bag_equal = served_bag == direct_bag
        assert bag_equal, "served results diverge from direct calls"
        assert len(served_bag) == len(all_records)

        # --- the loop never stalled: engine work stayed on the executor - #
        max_lag_ms = metrics["event_loop"]["max_lag_ms"]
        assert max_lag_ms < 100.0, f"event loop stalled {max_lag_ms} ms"
        assert result.ws_messages > 0

        latencies = sorted(result.latencies_ms)
        elapsed = timing["elapsed_s"]
        rows = [{
            "sessions": HTTP_SESSIONS + WS_SESSIONS,
            "requests": result.requests,
            "throughput_rps": round(result.requests / elapsed, 1),
            "p50_ms": round(_percentile(latencies, 0.50), 2),
            "p99_ms": round(_percentile(latencies, 0.99), 2),
            "max_ms": round(latencies[-1], 2),
            "ws_messages": result.ws_messages,
            "loop_max_lag_ms": max_lag_ms,
        }]
        print_table("Serving: concurrent mixed sessions", rows)
        _record_artifact("mixed_sessions", {
            **rows[0],
            "elapsed_s": round(elapsed, 3),
            "bag_equal": bag_equal,
            "http_sessions": HTTP_SESSIONS,
            "ws_sessions": WS_SESSIONS,
        })
    finally:
        server.stop()
        served.close()
        twin.close()
        gc.enable()
        gc.unfreeze()
        gc.collect()
