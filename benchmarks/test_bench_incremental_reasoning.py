"""E7 -- incremental (delta-driven) reasoning vs. the from-scratch fixpoint.

The ontology segment layer re-reasons after every ingest batch.  With the
naive engine that cost grew with the *accumulated* graph; the semi-naive
incremental engine seeds rule joins from the batch's delta, so the
per-batch top-up stays ~flat while the from-scratch baseline keeps
growing with total triples.
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.core.annotation import SemanticAnnotator
from repro.core.mediator import Mediator
from repro.ontologies import build_unified_ontology
from repro.semantics.reasoner import Reasoner
from repro.streams.messages import ObservationRecord

BATCH_RECORDS = 60
BATCHES = 20


def _observations(mediator, count, start=0):
    observations = []
    for index in range(start, start + count):
        outcome = mediator.mediate(ObservationRecord(
            source_id=f"mote-{index % 12}", source_kind="wsn_mote",
            property_name="Bodenfeuchte", value=5.0 + index % 30, unit="percent",
            timestamp=float(index * 600), location=(-29.1, 26.2),
        ))
        observations.append(outcome.observation)
    return observations


def test_bench_incremental_batch_topup(benchmark):
    """Per-batch incremental top-up on an already-grown graph."""
    library = build_unified_ontology(materialize=False)
    graph = library.graph
    reasoner = Reasoner(graph)
    reasoner.materialize()
    annotator = SemanticAnnotator(graph)
    mediator = Mediator()
    # grow the graph well past its seed size before measuring
    annotator.annotate_batch(_observations(mediator, 600))
    reasoner.ensure_materialized()
    state = {"next": 600}

    def topup():
        observations = _observations(mediator, BATCH_RECORDS, start=state["next"])
        state["next"] += BATCH_RECORDS
        annotator.annotate_batch(observations)
        reasoner.ensure_materialized()

    benchmark.pedantic(topup, rounds=5, iterations=1)
    assert reasoner.last_trace is not None


def test_bench_incremental_vs_from_scratch_scaling(request):
    """The E7 table: per-batch reasoning cost as the graph grows ~10x."""
    library = build_unified_ontology(materialize=False)
    graph = library.graph
    reasoner = Reasoner(graph)
    reasoner.materialize()
    base_size = len(graph)
    annotator = SemanticAnnotator(graph)
    mediator = Mediator()

    checkpoints = {0, BATCHES // 2, BATCHES - 1}
    rows = []
    incremental_times = []
    full_times = {}
    for batch_index in range(BATCHES):
        observations = _observations(
            mediator, BATCH_RECORDS, start=batch_index * BATCH_RECORDS
        )
        annotator.annotate_batch(observations)
        started = time.perf_counter()
        reasoner.ensure_materialized()
        incremental_time = time.perf_counter() - started
        incremental_times.append(incremental_time)

        full_time = None
        if batch_index in checkpoints:
            # from-scratch baseline: naive fixpoint over the whole graph,
            # what every post-batch materialize() cost before delta tracking
            scratch = graph.copy()
            started = time.perf_counter()
            Reasoner(scratch).materialize(full=True)
            full_time = time.perf_counter() - started
            full_times[batch_index] = full_time
            # the incrementally maintained graph is already closed: the
            # from-scratch oracle must not find anything new
            assert len(scratch) == len(graph)

        rows.append({
            "batch": batch_index + 1,
            "graph_triples": len(graph),
            "incremental_ms": round(incremental_time * 1e3, 2),
            "from_scratch_ms": "" if full_time is None else round(full_time * 1e3, 2),
        })

    print_table("E7: incremental vs from-scratch reasoning", rows)

    # the graph grew >= 10x past the materialized ontology seed
    assert len(graph) >= 10 * base_size

    if request.config.getoption("benchmark_disable", False):
        # quick mode (CI bench-smoke): the structural checks above — the
        # loop ran and the incremental closure is a true fixpoint at every
        # checkpoint — are the rot detector; wall-clock ratios are only
        # asserted on a quiet local machine
        return
    # from-scratch cost grows with total graph size ...
    assert full_times[BATCHES - 1] > 1.5 * full_times[0]
    # ... while the incremental top-up stays ~flat (generous bound for
    # timer noise: same batch size => same order of work)
    first = min(incremental_times[:3])
    last = min(incremental_times[-3:])
    assert last < 8 * max(first, 1e-4)
    # and the incremental top-up beats re-running from scratch outright
    # (locally ~10x; min-of-3 and a 2x bound absorb scheduling noise)
    assert min(incremental_times[-3:]) < full_times[BATCHES - 1] / 2
