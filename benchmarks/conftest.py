"""Shared fixtures for the benchmark harness.

Every benchmark prints the rows of the table/figure it regenerates (captured
with ``pytest benchmarks/ --benchmark-only -s``) in addition to the
pytest-benchmark timing output, so the EXPERIMENTS.md numbers can be
refreshed from a single run.
"""

import pytest

from repro.ontologies import build_unified_ontology


def pytest_configure(config):
    config.addinivalue_line("markers", "benchmark: benchmark harness tests")


@pytest.fixture(scope="session")
def ontology_library():
    """One shared ontology library for all benchmarks (building is cheap but
    repeated builds would dominate the timings of small benchmarks)."""
    return build_unified_ontology(materialize=True)


def print_table(title, rows):
    """Print a list-of-dicts table in a compact aligned form."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    header = " | ".join(f"{key:>18}" for key in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        print(" | ".join(f"{str(row.get(key, '')):>18}" for key in keys))
