"""E8 -- cost-based query planning vs written-order evaluation, and caching.

The dashboard / DEWS query workload repeats a handful of SPARQL queries as
the annotation graph grows.  Two levers keep that workload fast:

* the planner orders a basic graph pattern's triples by estimated
  selectivity (index statistics), so an adversarially-written query no
  longer degenerates to a scan over every observation, and
* the version-keyed plan / result caches serve a repeated query over an
  unchanged graph without parsing, planning or evaluating anything.

Acceptance targets: planned >= 5x over written-order evaluation on the
adversarial BGP at >= 20k triples, cached repeats >= 10x over a cold
parse+plan+evaluate.
"""

import time
from collections import Counter

import pytest

from benchmarks.conftest import print_table
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import Namespace, RDF
from repro.semantics.rdf.term import Literal
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.evaluator import query
from repro.semantics.sparql.planner import QueryPlanner

EX = Namespace("http://example.org/")

SENSORS = 100
RARE_SENSORS = 2

# Written-order worst case: the query author leads with the patterns that
# match every observation; the only selective pattern comes last.  The
# naive evaluator's unbound-position tie-break cannot rescue this order.
ADVERSARIAL_QUERY = """
    SELECT ?v WHERE {
        ?obs ex:inArea ex:AreaMain .
        ?obs ex:hasValue ?v .
        ?obs ex:observedBy ?sensor .
        ?sensor a ex:RareSensor .
    }
"""


def _build_graph(observations):
    graph = Graph()
    graph.namespaces.bind("ex", EX)
    triples = []
    for i in range(SENSORS):
        triples.append(Triple(EX[f"sensor{i}"], RDF.type, EX.Sensor))
    for i in range(RARE_SENSORS):
        triples.append(Triple(EX[f"sensor{i}"], RDF.type, EX.RareSensor))
    for i in range(observations):
        obs = EX[f"obs{i}"]
        triples.append(Triple(obs, EX.inArea, EX.AreaMain))
        triples.append(Triple(obs, EX.hasValue, Literal(float(i % 50))))
        triples.append(Triple(obs, EX.observedBy, EX[f"sensor{i % SENSORS}"]))
    graph.add_all(triples)
    return graph


def _best_of(runs, fn):
    best = float("inf")
    result = None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_bench_planned_adversarial_query(benchmark):
    """pytest-benchmark timing of the planned adversarial query (20k+ triples)."""
    graph = _build_graph(7_000)
    planner = QueryPlanner(result_cache_size=0)  # measure real evaluation

    result = benchmark(lambda: planner.query(graph, ADVERSARIAL_QUERY))
    assert len(result) == RARE_SENSORS * (7_000 // SENSORS)


def test_bench_cached_repeat_query(benchmark):
    """pytest-benchmark timing of a result-cache hit on an unchanged graph."""
    graph = _build_graph(7_000)
    planner = QueryPlanner()
    planner.query(graph, ADVERSARIAL_QUERY)  # warm both caches

    result = benchmark(lambda: planner.query(graph, ADVERSARIAL_QUERY))
    assert planner.statistics.result_hits > 0
    assert len(result) == RARE_SENSORS * (7_000 // SENSORS)


def test_bench_planned_vs_written_order_scaling(request):
    """The E8 table: written-order vs planned vs cached as the graph grows."""
    rows = []
    ratios = {}
    for observations in (1_500, 3_500, 7_000):
        graph = _build_graph(observations)
        size = len(graph)

        written_time, written = _best_of(
            3, lambda: query(graph, ADVERSARIAL_QUERY, use_planner=False)
        )

        # cold: parse + plan + evaluate with empty caches every run
        def cold():
            return QueryPlanner().query(graph, ADVERSARIAL_QUERY)

        cold_time, planned = _best_of(3, cold)

        # warm: the shared planner serves the repeat from the result cache
        warm_planner = QueryPlanner()
        warm_planner.query(graph, ADVERSARIAL_QUERY)

        def cached():
            return warm_planner.query(graph, ADVERSARIAL_QUERY)

        cached_time, cached_result = _best_of(5, cached)
        assert warm_planner.statistics.result_hits >= 5

        # correctness before speed: all three agree on the solution multiset
        expected = RARE_SENSORS * (observations // SENSORS)
        assert (
            Counter(written.solutions)
            == Counter(planned.solutions)
            == Counter(cached_result.solutions)
        )
        assert len(planned) == expected

        ratios[size] = (written_time / cold_time, cold_time / cached_time)
        rows.append({
            "graph_triples": size,
            "written_order_ms": round(written_time * 1e3, 2),
            "planned_cold_ms": round(cold_time * 1e3, 3),
            "cached_ms": round(cached_time * 1e3, 4),
            "plan_speedup": round(written_time / cold_time, 1),
            "cache_speedup": round(cold_time / cached_time, 1),
        })

    print_table("E8: query planning and caching", rows)

    final_size = max(ratios)
    assert final_size >= 20_000

    if request.config.getoption("benchmark_disable", False):
        # quick mode (CI bench-smoke): the equivalence and cache-hit checks
        # above are the rot detector; wall-clock ratios are only asserted
        # on a quiet local machine
        return
    plan_speedup, cache_speedup = ratios[final_size]
    assert plan_speedup >= 5.0
    assert cache_speedup >= 10.0
