"""E8 -- WSN data gathering: delivery ratio, energy, and the effect of loss
on downstream data availability (paper §5)."""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.sensors.network import WirelessSensorNetwork
from repro.sensors.node import SensorNode
from repro.sensors.radio import RadioModel
from repro.streams.scheduler import DAY
from repro.workloads.climate import ClimateGenerator


def _build_network(motes, loss, seed=5, spacing=0.002):
    climate = ClimateGenerator(seed=seed)
    radio = RadioModel(reference_loss=loss, seed=seed)
    network = WirelessSensorNetwork(sink_location=(-29.100, 26.200), radio=radio,
                                    max_link_range_m=650.0)
    for index in range(motes):
        row, col = divmod(index, 4)
        network.add_node(SensorNode(
            node_id=f"mote-{index:02d}",
            location=(-29.100 + spacing * (row + 1), 26.200 + spacing * col),
            modalities=["air_temperature", "soil_moisture", "rainfall"],
            environment=climate, seed=seed * 100 + index,
        ))
    return network


def _run_days(network, days=30, rounds_per_day=2):
    for day in range(days):
        for round_index in range(rounds_per_day):
            network.sample_and_deliver(day * DAY + (round_index + 1) * 6 * 3600.0)
    return network.statistics


def test_bench_wsn_round(benchmark):
    """Cost of one full sample-and-deliver round across a 16-mote mesh."""
    network = _build_network(16, loss=0.02)
    counter = {"round": 0}

    def run():
        counter["round"] += 1
        network.sample_and_deliver(counter["round"] * 6 * 3600.0)

    benchmark(run)


def test_bench_wsn_delivery_table(benchmark):
    """The E8 table: delivery ratio and energy as link loss grows."""
    rows = []
    ratios = []
    benchmark.pedantic(lambda: _run_days(_build_network(12, loss=0.05), days=5), rounds=1, iterations=1)
    for loss in (0.01, 0.05, 0.10, 0.20):
        network = _build_network(12, loss=loss)
        stats = _run_days(network, days=20)
        ratios.append(stats.delivery_ratio)
        rows.append({
            "link_loss_at_100m": loss,
            "batches_sent": stats.batches_sent,
            "delivery_ratio": round(stats.delivery_ratio, 3),
            "bytes_on_air": stats.total_bytes_on_air,
            "mJ_per_record": round(stats.energy_per_delivered_record_mj, 2),
            "alive_motes": network.alive_count,
        })
    print_table("E8: WSN delivery vs link loss", rows)

    # delivery degrades monotonically (allowing small noise) as loss grows
    assert ratios[0] > 0.9
    assert ratios[-1] < ratios[0]
    # energy per delivered record grows as retransmissions and losses mount
    assert rows[-1]["mJ_per_record"] > rows[0]["mJ_per_record"]


def test_bench_wsn_density_table(benchmark):
    """Connectivity and delivery as the mesh gets sparser (longer hops)."""
    rows = []
    benchmark.pedantic(lambda: _build_network(12, loss=0.02).connectivity(), rounds=1, iterations=1)
    for spacing, label in ((0.002, "dense (~220 m)"), (0.004, "medium (~440 m)"),
                           (0.0055, "sparse (~610 m)")):
        network = _build_network(12, loss=0.02, spacing=spacing)
        stats = _run_days(network, days=10)
        rows.append({
            "deployment": label,
            "connectivity": round(network.connectivity(), 2),
            "delivery_ratio": round(stats.delivery_ratio, 3),
            "mean_latency_s": round(stats.total_latency / max(1, stats.batches_sent), 4),
        })
    print_table("E8b: WSN delivery vs deployment density", rows)
    assert rows[0]["delivery_ratio"] >= rows[-1]["delivery_ratio"]
