"""E5 -- reliability of indigenous-knowledge-only forecasts (paper §2).

The paper motivates the middleware with the observation that most farmers
rely on indigenous knowledge forecasts, which provide "an uncertain level of
accuracy".  This benchmark quantifies that uncertainty: IK-only forecast
skill as the elicitation campaign degrades (fewer respondents, more
disagreement) and as indicator reliability is discounted.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.forecasting.evaluation import evaluate_forecasts
from repro.forecasting.fusion import IndigenousForecaster
from repro.ik.elicitation import ElicitationCampaign
from repro.ik.indicators import IndicatorActivityModel
from repro.sensors.mobile import MobileObserver
from repro.streams.scheduler import DAY
from repro.workloads.climate import ClimateGenerator, DroughtEpisode


def _ik_only_skill(knowledge_base, seed=5, days=365):
    """Simulate observers reporting sightings and score IK-only forecasts."""
    climate = ClimateGenerator(seed=seed, episodes=[DroughtEpisode(200, 310, 0.85)])
    activity = IndicatorActivityModel(climate, reference=ClimateGenerator(seed=seed))
    observers = [
        MobileObserver(
            f"farmer-{index}", (-29.1 + 0.01 * index, 26.2), climate,
            indicator_activity=activity,
            indicators=list(knowledge_base.indicators)[:6] or ["sifennefene_worms"],
            seed=seed * 10 + index,
        )
        for index in range(8)
    ]
    for day in range(0, days, 3):
        for observer in observers:
            for record in observer.report_sightings(day * DAY + DAY / 2):
                knowledge_base.register_sighting(record)
    forecaster = IndigenousForecaster(knowledge_base)
    forecasts = forecaster.forecast_series(days, issue_every_days=10, start_day=45)
    return evaluate_forecasts(forecasts, climate.drought_truth(days), climate.episodes)


@pytest.fixture(scope="module")
def campaign_grid():
    grid = []
    for label, respondents, implication_noise in [
        ("rich elicitation", 40, 0.05),
        ("typical elicitation", 20, 0.15),
        ("poor elicitation", 8, 0.30),
    ]:
        campaign = ElicitationCampaign(
            respondents=respondents, implication_noise=implication_noise,
            recognition_rate=0.7, seed=9,
        )
        grid.append((label, campaign.run(), campaign.last_report))
    return grid


def test_bench_ik_elicitation(benchmark):
    """Cost of running one elicitation campaign."""
    benchmark(lambda: ElicitationCampaign(respondents=30, seed=1).run())


def test_bench_ik_reliability_table(benchmark, campaign_grid):
    """The E5 table: IK-only skill under degrading elicitation quality."""
    rows = []
    skills = {}
    benchmark.pedantic(lambda: _ik_only_skill(campaign_grid[0][1]), rounds=1, iterations=1)
    for label, knowledge_base, report in campaign_grid:
        skill = _ik_only_skill(knowledge_base)
        skills[label] = skill
        rows.append({
            "campaign": label,
            "indicators": len(knowledge_base),
            "disagreement": round(report.disagreement_rate, 3),
            "POD": round(skill.pod, 3),
            "FAR": round(skill.far, 3),
            "CSI": round(skill.csi, 3),
            "Brier": round(skill.brier_score, 3),
        })
    print_table("E5: IK-only forecast reliability vs elicitation quality", rows)

    # IK forecasts carry real signal but stay imperfect -- the motivation gap
    rich = skills["rich elicitation"]
    assert rich.pod > 0.3
    assert rich.far > 0.05 or rich.pod < 0.95
    # poorer elicitation does not improve skill
    assert skills["poor elicitation"].csi <= rich.csi + 0.1
