"""Dictionary-encoded triple store vs the object-tuple baseline.

Quantifies the three wins of interning terms to dense integer ids at the
graph boundary:

* **Ingest throughput** — 10k records of annotation-shaped triples through
  the seed-style path (every IRI constructed and re-validated per record,
  object-keyed permutation indexes) vs the dictionary era (vocabulary and
  repeated IRIs interned per batch, int-keyed indexes).
* **Adversarial join** — the same basic graph pattern joined over decoded
  term objects (``BGP(..., use_ids=False)``, the equivalence oracle) vs
  the id-space join loop, on a graph whose fan-out punishes per-candidate
  allocation.
* **Resident memory** — ``tracemalloc`` footprint of 100k+ triples in the
  object-tuple layout (one ``set`` per (s,p) / (p,o) / (o,s) pair) vs the
  encoded layout with adaptive singleton buckets.

Each test appends its rows to ``BENCH_term_encoding.json`` in the working
directory — the summary artifact the CI bench-smoke job uploads.
"""

from __future__ import annotations

import gc
import json
import time
import tracemalloc
from collections import defaultdict
from pathlib import Path
from typing import List

from benchmarks.conftest import print_table
from repro.semantics.rdf.graph import Graph
from repro.semantics.rdf.namespace import Namespace
from repro.semantics.rdf.term import IRI, Literal, Variable
from repro.semantics.rdf.triple import Triple
from repro.semantics.sparql.algebra import BGP

EX = Namespace("http://example.org/")
BASE = "http://example.org/"

ARTIFACT = Path("BENCH_term_encoding.json")


def _record_artifact(section: str, payload) -> None:
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _best_of(repeats: int, fn) -> float:
    """Best-of-N wall time: robust against scheduler / GC noise in CI."""
    best = float("inf")
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class ObjectTupleGraph:
    """The pre-dictionary storage baseline: object-keyed SPO/POS/OSP.

    A faithful condensation of the seed's ``Graph.add`` data path — three
    permutation indexes keyed by term objects with a ``set`` per innermost
    bucket, groundness validation, per-predicate statistics and the
    version counter.  Tracker notification is omitted (no trackers are
    registered in either graph during the runs), slightly favouring the
    baseline.
    """

    def __init__(self):
        self._spo = defaultdict(lambda: defaultdict(set))
        self._pos = defaultdict(lambda: defaultdict(set))
        self._osp = defaultdict(lambda: defaultdict(set))
        self._size = 0
        self._version = 0
        self._pred_counts = {}
        self._pred_subjects = {}

    def add(self, triple: Triple) -> bool:
        if not triple.is_ground():
            raise ValueError("cannot add a triple containing variables")
        s, p, o = triple.subject, triple.predicate, triple.object
        objects = self._spo[s][p]
        if o in objects:
            return False
        if not objects:
            self._pred_subjects[p] = self._pred_subjects.get(p, 0) + 1
        objects.add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        self._size += 1
        self._pred_counts[p] = self._pred_counts.get(p, 0) + 1
        self._version += 1
        return True

    def __len__(self) -> int:
        return self._size


# --------------------------------------------------------------------- #
# workload generators (annotation-shaped: what ingest_batch commits)
# --------------------------------------------------------------------- #

def _record_triples_fresh(index: int) -> List[Triple]:
    """Seed-style generation: every IRI built (and re-validated) per record."""
    obs = IRI(f"{BASE}observation/{index}")
    res = IRI(f"{BASE}result/{index}")
    sensor = IRI(f"{BASE}sensor/{index % 40}")
    return [
        Triple(obs, IRI(BASE + "type"), IRI(BASE + "Observation")),
        Triple(obs, IRI(BASE + "observedBy"), sensor),
        Triple(obs, IRI(BASE + "observedProperty"), IRI(f"{BASE}prop{index % 5}")),
        Triple(obs, IRI(BASE + "hasResult"), res),
        Triple(obs, IRI(BASE + "resultTime"), Literal(60.0 * index)),
        Triple(res, IRI(BASE + "type"), IRI(BASE + "SensorOutput")),
        Triple(res, IRI(BASE + "hasValue"), Literal(10.0 + (index % 17))),
        Triple(res, IRI(BASE + "hasUnit"), IRI(f"{BASE}unit{index % 5}")),
        Triple(sensor, IRI(BASE + "type"), IRI(BASE + "SensingDevice")),
        Triple(sensor, IRI(BASE + "label"), Literal(f"sensor-{index % 40}")),
        Triple(sensor, IRI(BASE + "observes"), IRI(f"{BASE}prop{index % 5}")),
    ]


def _make_interned_generator():
    """Dictionary-era generation: repeated IRIs interned once per batch,
    matching what ``SemanticAnnotator.annotate_batch`` + the namespace
    attribute cache now do at the ingest boundary."""
    memo = {}

    def intern(name: str) -> IRI:
        iri = memo.get(name)
        if iri is None:
            iri = memo[name] = IRI(BASE + name)
        return iri

    def record_triples(index: int) -> List[Triple]:
        obs = IRI(f"{BASE}observation/{index}")
        res = IRI(f"{BASE}result/{index}")
        sensor = intern(f"sensor/{index % 40}")
        return [
            Triple(obs, intern("type"), intern("Observation")),
            Triple(obs, intern("observedBy"), sensor),
            Triple(obs, intern("observedProperty"), intern(f"prop{index % 5}")),
            Triple(obs, intern("hasResult"), res),
            Triple(obs, intern("resultTime"), Literal(60.0 * index)),
            Triple(res, intern("type"), intern("SensorOutput")),
            Triple(res, intern("hasValue"), Literal(10.0 + (index % 17))),
            Triple(res, intern("hasUnit"), intern(f"unit{index % 5}")),
            Triple(sensor, intern("type"), intern("SensingDevice")),
            Triple(sensor, intern("label"), Literal(f"sensor-{index % 40}")),
            Triple(sensor, intern("observes"), intern(f"prop{index % 5}")),
        ]

    return record_triples


# --------------------------------------------------------------------- #
# ingest throughput
# --------------------------------------------------------------------- #

RECORDS = 10_000


def test_bench_encoded_ingest_beats_object_tuples():
    """10k-record ingest must be >= 2x faster through the encoded path."""

    def baseline_run():
        graph = ObjectTupleGraph()
        for index in range(RECORDS):
            for triple in _record_triples_fresh(index):
                graph.add(triple)
        return graph

    def encoded_run():
        generate = _make_interned_generator()
        graph = Graph()
        for index in range(RECORDS):
            graph.add_all(generate(index))
        return graph

    assert len(baseline_run()) == len(encoded_run())  # warm-up + sanity
    baseline_time = _best_of(3, baseline_run)
    encoded_time = _best_of(3, encoded_run)
    speedup = baseline_time / encoded_time

    rows = [
        {"path": "object-tuple baseline", "seconds": round(baseline_time, 3),
         "records_per_s": int(RECORDS / baseline_time)},
        {"path": "dictionary-encoded", "seconds": round(encoded_time, 3),
         "records_per_s": int(RECORDS / encoded_time)},
        {"path": "speedup", "seconds": round(speedup, 2), "records_per_s": ""},
    ]
    print_table("Ingest: 10k annotation-shaped records", rows)
    _record_artifact("ingest", {
        "records": RECORDS,
        "baseline_seconds": baseline_time,
        "encoded_seconds": encoded_time,
        "speedup": speedup,
    })
    assert speedup >= 2.0


def test_bench_encoded_ingest_throughput(benchmark):
    """pytest-benchmark timing for the encoded commit path (2k records)."""
    generate = _make_interned_generator()
    batches = [generate(index) for index in range(2_000)]

    def run():
        graph = Graph()
        for batch in batches:
            graph.add_all(batch)

    benchmark.pedantic(run, rounds=3, iterations=1)


# --------------------------------------------------------------------- #
# adversarial join
# --------------------------------------------------------------------- #

def _join_workload() -> Graph:
    graph = Graph()
    for index in range(7_000):
        graph.add(Triple(EX[f"s{index}"], EX.p0, EX[f"mid{index % 50}"]))
        graph.add(Triple(EX[f"mid{index % 50}"], EX.p1, EX[f"t{index % 10}"]))
    return graph


def test_bench_encoded_join_beats_decoded():
    """The id-space join must be >= 2x faster than the decoded oracle.

    Both sides evaluate the *same* pattern order, so the ratio isolates
    the representation (ints vs term objects), not planning.
    """
    graph = _join_workload()
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    patterns = [Triple(x, EX.p0, y), Triple(y, EX.p1, z)]

    decoded_count = sum(1 for _ in BGP(patterns, use_ids=False).solutions(graph))
    encoded_count = sum(1 for _ in BGP(patterns, use_ids=True).solutions(graph))
    assert decoded_count == encoded_count > 0

    decoded_time = _best_of(
        5, lambda: sum(1 for _ in BGP(patterns, use_ids=False).solutions(graph))
    )
    encoded_time = _best_of(
        5, lambda: sum(1 for _ in BGP(patterns, use_ids=True).solutions(graph))
    )
    speedup = decoded_time / encoded_time

    print_table("Adversarial join: decoded oracle vs id-space", [
        {"path": "decoded objects", "seconds": round(decoded_time, 4)},
        {"path": "encoded ids", "seconds": round(encoded_time, 4)},
        {"path": "speedup", "seconds": round(speedup, 2)},
    ])
    _record_artifact("adversarial_join", {
        "solutions": encoded_count,
        "decoded_seconds": decoded_time,
        "encoded_seconds": encoded_time,
        "speedup": speedup,
    })
    assert speedup >= 2.0


# --------------------------------------------------------------------- #
# resident memory at 100k+ triples
# --------------------------------------------------------------------- #

def test_bench_per_triple_memory_footprint():
    """Encoded storage must use less memory per resident triple at 100k."""
    records = 12_600  # ~101k resident triples after deduplication

    def measure(build):
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        graph = build()
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return graph, after - before

    def build_baseline():
        graph = ObjectTupleGraph()
        for index in range(records):
            for triple in _record_triples_fresh(index):
                graph.add(triple)
        return graph

    def build_encoded():
        generate = _make_interned_generator()
        graph = Graph()
        for index in range(records):
            graph.add_all(generate(index))
        return graph

    baseline_graph, baseline_bytes = measure(build_baseline)
    encoded_graph, encoded_bytes = measure(build_encoded)
    size = len(encoded_graph)
    assert len(baseline_graph) == size >= 100_000

    rows = [
        {"path": "object-tuple baseline", "total_mb": round(baseline_bytes / 1e6, 1),
         "bytes_per_triple": int(baseline_bytes / size)},
        {"path": "dictionary-encoded", "total_mb": round(encoded_bytes / 1e6, 1),
         "bytes_per_triple": int(encoded_bytes / size)},
    ]
    print_table(f"Resident memory at {size} triples", rows)
    _record_artifact("memory", {
        "triples": size,
        "baseline_bytes": baseline_bytes,
        "encoded_bytes": encoded_bytes,
        "baseline_bytes_per_triple": baseline_bytes / size,
        "encoded_bytes_per_triple": encoded_bytes / size,
        "reduction_factor": baseline_bytes / max(1, encoded_bytes),
    })
    # the dictionary adds a term table, so the win must come from the
    # int-keyed indexes and adaptive singleton buckets — and it does,
    # with a wide margin
    assert encoded_bytes < baseline_bytes * 0.8
