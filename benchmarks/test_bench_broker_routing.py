"""Broker routing and batch-ingestion throughput.

Quantifies the two middleware hot paths this repo optimises:

* trie-indexed topic routing vs the naive linear scan over all
  subscriptions, at 10 / 100 / 1000 subscriptions, and
* stage-major batch ingestion (``ingest_batch``) vs the per-record loop
  (``ingest_records``).
"""

from __future__ import annotations

import time
from typing import List

import pytest

from benchmarks.conftest import print_table
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.streams.broker import Broker, topic_matches
from repro.streams.messages import ObservationRecord

SUBSCRIPTION_COUNTS = [10, 100, 1000]


class LinearScanBroker:
    """The pre-trie routing baseline: match every subscription per publish."""

    def __init__(self):
        self._subscriptions = []

    def subscribe(self, pattern, handler):
        self._subscriptions.append((pattern, handler))

    def publish(self, topic, payload):
        for pattern, handler in self._subscriptions:
            if topic_matches(pattern, topic):
                handler(payload)


def _subscribe_n(broker, count: int) -> None:
    # realistic application-layer shapes: exact, one-level-wildcard and
    # subtree subscriptions spread over distinct properties/areas
    for index in range(count):
        prop = f"property-{index % (count // 2 or 1)}"
        if index % 3 == 0:
            pattern = f"canonical/{prop}/+"
        elif index % 3 == 1:
            pattern = f"canonical/{prop}/area-{index}"
        else:
            pattern = f"derived/{prop}/#"
        broker.subscribe(pattern, lambda m: None)


def _publish_topics(count: int) -> List[str]:
    return [f"canonical/property-{i % (count // 2 or 1)}/area-{i}" for i in range(200)]


def _time_publishes(broker, topics, repeats=5) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        for topic in topics:
            broker.publish(topic, None)
    return (time.perf_counter() - start) / (repeats * len(topics))


@pytest.mark.parametrize("count", SUBSCRIPTION_COUNTS)
def test_bench_trie_publish_throughput(benchmark, count):
    """Per-publish cost of trie routing at growing subscription counts."""
    broker = Broker()
    _subscribe_n(broker, count)
    topics = _publish_topics(count)

    def run():
        for topic in topics:
            broker.publish(topic, None)

    benchmark(run)


@pytest.mark.parametrize("count", SUBSCRIPTION_COUNTS)
def test_bench_linear_publish_throughput(benchmark, count):
    """The linear-scan baseline on the identical workload."""
    broker = LinearScanBroker()
    _subscribe_n(broker, count)
    topics = _publish_topics(count)

    def run():
        for topic in topics:
            broker.publish(topic, None)

    benchmark(run)


def test_routing_scales_sublinearly():
    """Trie routing must not grow linearly with the subscription count.

    A 10x increase in subscriptions (100 -> 1000) multiplies the linear
    scan's per-publish cost by roughly 10x; the trie walk depends only on
    topic depth plus matched fanout and must stay well below that.
    """
    rows = []
    per_publish = {}
    for count in SUBSCRIPTION_COUNTS:
        trie_broker = Broker()
        linear_broker = LinearScanBroker()
        _subscribe_n(trie_broker, count)
        _subscribe_n(linear_broker, count)
        topics = _publish_topics(count)
        trie_time = _time_publishes(trie_broker, topics)
        linear_time = _time_publishes(linear_broker, topics)
        per_publish[count] = (trie_time, linear_time)
        rows.append({
            "subscriptions": count,
            "trie_us": round(trie_time * 1e6, 2),
            "linear_us": round(linear_time * 1e6, 2),
            "speedup": round(linear_time / trie_time, 1),
        })
    print_table("Broker routing: trie vs linear scan (per publish)", rows)

    trie_growth = per_publish[1000][0] / per_publish[100][0]
    linear_growth = per_publish[1000][1] / per_publish[100][1]
    # the trie's 100 -> 1000 growth factor must be far below the linear
    # scan's (~10x); allow generous slack for timer noise
    assert trie_growth < linear_growth / 2
    assert trie_growth < 5.0
    # and at 1000 subscriptions the trie must beat the scan outright
    assert per_publish[1000][0] < per_publish[1000][1] / 2


def _ingestion_records(count: int) -> List[ObservationRecord]:
    properties = [
        ("Bodenfeuchte", "percent"), ("PLUVIO", "mm"), ("Hoehe", "cm"),
        ("Dry Bulb Temperature", "degF"), ("Stav", "m"),
    ]
    records = []
    for index in range(count):
        name, unit = properties[index % len(properties)]
        records.append(ObservationRecord(
            source_id=f"Mangaung-mote-{index % 40:02d}", source_kind="wsn_mote",
            property_name=name, value=10.0 + (index % 17), unit=unit,
            timestamp=60.0 * index, location=(-29.1, 26.2),
        ))
    return records


def _middleware(ontology_library, annotate=False):
    return SemanticMiddleware(
        library=ontology_library,
        config=MiddlewareConfig(annotate_observations=annotate, broker_latency=0.0),
    )


def test_bench_ingest_batch_vs_single(ontology_library):
    """Batch ingestion must measurably beat the per-record loop at 10k records."""
    records = _ingestion_records(10_000)

    single = _middleware(ontology_library)
    start = time.perf_counter()
    single_events = single.ingest_records(records)
    single_time = time.perf_counter() - start

    batch = _middleware(ontology_library)
    start = time.perf_counter()
    batch_events = batch.ingest_batch(records)
    batch_time = time.perf_counter() - start

    assert len(single_events) == len(batch_events) == len(records)
    print_table("Ingestion: 10k records, per-record loop vs stage-major batch", [
        {"mode": "ingest_records", "seconds": round(single_time, 3),
         "records_per_s": int(len(records) / single_time)},
        {"mode": "ingest_batch", "seconds": round(batch_time, 3),
         "records_per_s": int(len(records) / batch_time)},
    ])
    # stage-major batching amortises term alignment, graph commits and the
    # CEP flush; it must clearly beat the per-record loop, not just tie it
    assert batch_time < single_time * 0.8


def test_bench_ingest_batch_throughput(benchmark, ontology_library):
    """pytest-benchmark timing for the stage-major batch path (2k records)."""
    records = _ingestion_records(2_000)
    middleware = _middleware(ontology_library)
    benchmark.pedantic(lambda: middleware.ingest_batch(records), rounds=3, iterations=1)
