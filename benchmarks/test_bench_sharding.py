"""Sharded per-area partitions vs the single shared graph.

The production serving loop the middleware is built for never ingests in
isolation: district gateways upload poll batches continuously while
dashboards and the DEWS keep asking the same query suite.  On one shared
graph every poll bumps the single ``Graph.version``, so *every* cached
query result is invalidated by *every* district's upload and the whole
dashboard suite re-evaluates against the ever-growing graph after each
poll.  With per-area partitions a poll touches exactly one shard: the
other partitions' versions — and therefore their plan / result caches —
survive, and the one re-evaluation that does happen scans a quarter of the
data.  That cache-survival + partition-pruning effect is architectural, so
the speedup holds even on a single core (no thread parallelism needed).

Benchmarks (each appends its rows to ``BENCH_sharding.json``, the summary
artifact the CI bench-smoke job uploads via the ``BENCH_*.json`` glob):

* **Sustained ingest under dashboard load** — 10k records, mixed across 8
  districts, arriving as per-district polls with the standing query suite
  served after each poll; 4 shards must sustain >= 2x the records/s of
  ``shards=1``, and the final answers must match the single-graph oracle.
* **One mixed-district batch** — the same 10k records as a single
  ``ingest_batch`` call (every shard touched, thread fan-out engaged);
  reported for transparency: on a single-core host this is expected to be
  ~1x, since the win above comes from cache survival, not threads.
* **Process-backend scale-out** — the same mixed stream through the
  ``process`` shard backend (one forked worker per partition) at 1/2/4
  shards, against the inline backend at the same shard counts; the >= 2.5x
  speedup assert engages only when the host actually has >= 4 cores (the
  artifact records the measured core count).
* **Federated query latency** — pytest-benchmark timing of a warm
  scatter-gather query.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import List

from benchmarks.conftest import print_table
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.ontologies.library import build_unified_ontology
from repro.streams.messages import ObservationRecord

ARTIFACT = Path("BENCH_sharding.json")

DISTRICTS = [f"district{index}" for index in range(8)]
PROPERTIES = [
    ("soil moisture", "percent", 20.0),
    ("rainfall", "mm", 3.0),
    ("air temperature", "degC", 18.0),
    ("relative humidity", "percent", 50.0),
]

ROUNDS = 10
RECORDS_PER_POLL = 125
TOTAL_RECORDS = ROUNDS * len(DISTRICTS) * RECORDS_PER_POLL  # 10_000

GLOBAL_QUERIES = [
    # unselective scans with selective results: the evaluation walks the
    # observation population (grows with the partition), the answers stay
    # small (cheap to merge / cache)
    """SELECT ?obs ?v WHERE { ?obs rdf:type ssn:Observation .
        ?obs ssn:hasResult ?r . ?r ssn:hasValue ?v . FILTER (?v > 57) }""",
    """SELECT DISTINCT ?sensor WHERE { ?obs ssn:observedBy ?sensor .
        ?sensor rdf:type ssn:SensingDevice . }""",
    """SELECT ?obs ?t WHERE { ?obs ssn:observationResultTime ?t .
        ?obs rdf:type ssn:Observation . FILTER (?t > 5990000) }""",
    """SELECT ?r ?v WHERE { ?r rdf:type ssn:SensorOutput .
        ?r ssn:hasValue ?v . FILTER (?v > 57) }""",
    """SELECT ?obs ?m WHERE { ?obs africrid:alignmentMethod ?m .
        ?obs rdf:type ssn:Observation . FILTER (?m = "fuzzy") }""",
    """ASK WHERE { ?obs ssn:hasResult ?r . ?r ssn:hasValue ?v .
        FILTER (?v > 100) }""",
    # recency panels: tail-of-stream windows over the observation times
    """SELECT ?obs ?t WHERE { ?obs rdf:type ssn:Observation .
        ?obs ssn:observationResultTime ?t . FILTER (?t > 700000) }""",
    """SELECT ?obs ?t WHERE { ?obs rdf:type ssn:Observation .
        ?obs ssn:observationResultTime ?t . FILTER (?t > 730000) }""",
    """SELECT ?obs ?t WHERE { ?obs rdf:type ssn:Observation .
        ?obs ssn:observationResultTime ?t . FILTER (?t > 745000) }""",
    # a second exceedance level per panel
    """SELECT ?obs ?v WHERE { ?obs rdf:type ssn:Observation .
        ?obs ssn:hasResult ?r . ?r ssn:hasValue ?v . FILTER (?v > 56) }""",
    """SELECT ?r ?v WHERE { ?r rdf:type ssn:SensorOutput .
        ?r ssn:hasValue ?v . FILTER (?v > 58) }""",
    """SELECT DISTINCT ?platform WHERE { ?sensor ssn:onPlatform ?platform .
        ?sensor rdf:type ssn:SensingDevice . }""",
]


def _area_query(district: str, threshold: int) -> str:
    feature = f"http://africrid.example.org/resource/feature/{district}"
    return (
        f"SELECT ?obs ?v WHERE {{ ?obs ssn:featureOfInterest <{feature}> . "
        f"?obs ssn:hasResult ?r . ?r ssn:hasValue ?v . FILTER (?v > {threshold}) }}"
    )


AREA_QUERIES = [
    _area_query(district, threshold)
    for district in DISTRICTS
    for threshold in (56, 57)
]
DASHBOARD_SUITE = GLOBAL_QUERIES + AREA_QUERIES


def _record_artifact(section: str, payload) -> None:
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _district_poll(district: str, round_index: int, count: int) -> List[ObservationRecord]:
    records = []
    for index in range(count):
        name, unit, base = PROPERTIES[index % len(PROPERTIES)]
        sequence = round_index * count + index
        records.append(
            ObservationRecord(
                source_id=f"{district}-mote-{index % 5:02d}",
                source_kind="wsn_mote",
                property_name=name,
                value=base + (sequence % 9),
                unit=unit,
                timestamp=600.0 * sequence,
                location=(1.0, 2.0),
                metadata={"area": district},
            )
        )
    return records


def _build(shards: int, backend: str = "inline") -> SemanticMiddleware:
    return SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(
            cep_per_record=False, shards=shards, shard_backend=backend
        ),
    )


def _solution_set(result):
    if result.form == "ASK":
        return result.ask
    return {
        frozenset((var.name, str(term)) for var, term in solution.items())
        for solution in result.solutions
    }


def _assert_oracle_equivalent(single: SemanticMiddleware, sharded: SemanticMiddleware):
    for query_text in DASHBOARD_SUITE:
        assert _solution_set(single.query(query_text)) == _solution_set(
            sharded.query(query_text)
        ), query_text


# --------------------------------------------------------------------- #
# sustained ingest under dashboard load
# --------------------------------------------------------------------- #


def _run_poll_cycle(middleware: SemanticMiddleware) -> float:
    """Ingest 10k records as per-district polls, serving the dashboard
    suite after every poll; returns the wall time."""
    start = time.perf_counter()
    for round_index in range(ROUNDS):
        for district in DISTRICTS:
            middleware.ingest_batch(
                _district_poll(district, round_index, RECORDS_PER_POLL)
            )
            for query_text in DASHBOARD_SUITE:
                middleware.query(query_text)
    return time.perf_counter() - start


def test_bench_sharded_ingest_throughput_under_dashboard_load():
    """4 shards must sustain >= 2x the single-graph ingest+serve rate."""
    single = _build(shards=1)
    sharded = _build(shards=4)

    single_seconds = _run_poll_cycle(single)
    sharded_seconds = _run_poll_cycle(sharded)
    speedup = single_seconds / sharded_seconds

    single_stats = single.statistics()
    sharded_stats = sharded.statistics()
    rows = [
        {"config": "shards=1", "seconds": round(single_seconds, 2),
         "records_per_s": int(TOTAL_RECORDS / single_seconds),
         "result_cache_hits": single_stats["query_planner"].result_hits},
        {"config": "shards=4", "seconds": round(sharded_seconds, 2),
         "records_per_s": int(TOTAL_RECORDS / sharded_seconds),
         "result_cache_hits": sharded_stats["query_planner"].result_hits},
        {"config": "speedup", "seconds": round(speedup, 2),
         "records_per_s": "", "result_cache_hits": ""},
    ]
    print_table(
        f"Ingest+serve: {TOTAL_RECORDS} records as per-district polls, "
        f"{len(DASHBOARD_SUITE)} dashboard queries per poll", rows,
    )
    _record_artifact("poll_cycle", {
        "records": TOTAL_RECORDS,
        "polls": ROUNDS * len(DISTRICTS),
        "queries_per_poll": len(DASHBOARD_SUITE),
        "single_seconds": single_seconds,
        "sharded_seconds": sharded_seconds,
        "single_records_per_s": TOTAL_RECORDS / single_seconds,
        "sharded_records_per_s": TOTAL_RECORDS / sharded_seconds,
        "speedup": speedup,
        "single_result_cache_hits": single_stats["query_planner"].result_hits,
        "sharded_result_cache_hits": sharded_stats["query_planner"].result_hits,
        "shard_sizes": sharded_stats["sharding"]["shard_sizes"],
    })

    # the mechanism, not just the outcome: the single graph's caches are
    # invalidated by every poll, the partitions' caches survive
    assert single_stats["query_planner"].result_hits == 0
    assert sharded_stats["query_planner"].result_hits > 0
    _assert_oracle_equivalent(single, sharded)
    assert speedup >= 2.0


# --------------------------------------------------------------------- #
# one mixed-district batch (every shard touched)
# --------------------------------------------------------------------- #


def test_bench_sharded_mixed_batch_reported():
    """One 10k mixed batch: thread fan-out engaged, reported for
    transparency.  Cache survival cannot help here (every shard is
    touched), so a single-core host sees ~1x; the assert only guards
    against a pathological slowdown of the fan-out machinery."""
    mixed: List[ObservationRecord] = []
    for round_index in range(ROUNDS):
        polls = [
            _district_poll(district, round_index, RECORDS_PER_POLL)
            for district in DISTRICTS
        ]
        for index in range(RECORDS_PER_POLL):
            for poll in polls:
                mixed.append(poll[index])
    assert len(mixed) == TOTAL_RECORDS

    single = _build(shards=1)
    start = time.perf_counter()
    events_single = single.ingest_batch(mixed)
    single_seconds = time.perf_counter() - start

    sharded = _build(shards=4)
    start = time.perf_counter()
    events_sharded = sharded.ingest_batch(mixed)
    sharded_seconds = time.perf_counter() - start

    assert len(events_single) == len(events_sharded) == TOTAL_RECORDS
    assert [e.annotation_iri for e in events_single] == [
        e.annotation_iri for e in events_sharded
    ]
    ratio = single_seconds / sharded_seconds
    print_table("One mixed 10k batch (all shards touched)", [
        {"config": "shards=1", "seconds": round(single_seconds, 3),
         "records_per_s": int(TOTAL_RECORDS / single_seconds)},
        {"config": "shards=4", "seconds": round(sharded_seconds, 3),
         "records_per_s": int(TOTAL_RECORDS / sharded_seconds)},
        {"config": "ratio", "seconds": round(ratio, 2), "records_per_s": ""},
    ])
    _record_artifact("mixed_batch", {
        "records": TOTAL_RECORDS,
        "single_seconds": single_seconds,
        "sharded_seconds": sharded_seconds,
        "ratio": ratio,
        "parallel_batches": sharded.statistics()["sharding"]["parallel_batches"],
    })
    assert ratio > 0.4  # fan-out overhead must stay bounded on any host


# --------------------------------------------------------------------- #
# process-backend scale-out (shared-nothing worker processes)
# --------------------------------------------------------------------- #

PROCESS_ROUNDS = 4
PROCESS_TOTAL = PROCESS_ROUNDS * len(DISTRICTS) * RECORDS_PER_POLL  # 4_000


def _mixed_stream(rounds: int) -> List[ObservationRecord]:
    mixed: List[ObservationRecord] = []
    for round_index in range(rounds):
        polls = [
            _district_poll(district, round_index, RECORDS_PER_POLL)
            for district in DISTRICTS
        ]
        for index in range(RECORDS_PER_POLL):
            for poll in polls:
                mixed.append(poll[index])
    return mixed


def _timed_ingest(middleware: SemanticMiddleware, stream) -> float:
    start = time.perf_counter()
    middleware.ingest_batch(stream)
    return time.perf_counter() - start


def test_bench_process_backend_ingest_scaling():
    """Inline vs process shard workers on one mixed stream at 1/2/4 shards.

    The process backend forks one worker per partition, so annotate+reason
    for different shards runs on different cores.  On a >= 4-core host the
    4-shard process run must beat inline by >= 2.5x; on smaller hosts (this
    includes single-core CI runners, where every RPC round-trip is a context
    switch with zero parallelism to pay for it) the assert degrades to the
    bounded-overhead form used by the mixed-batch benchmark above.  The
    measured core count is recorded in the artifact so a reader can tell
    which regime a row came from.
    """
    cores = len(os.sched_getaffinity(0))
    stream = _mixed_stream(PROCESS_ROUNDS)
    assert len(stream) == PROCESS_TOTAL

    rows = []
    payload = {"records": PROCESS_TOTAL, "cores": cores, "workers": {}}
    seconds = {}
    for shards in (1, 2, 4):
        with _build(shards=shards) as inline:
            inline_seconds = _timed_ingest(inline, stream)
        with _build(shards=shards, backend="process") as process:
            process_seconds = _timed_ingest(process, stream)
            stats = process.ontology_layer.shard_statistics()
            assert len(stats) == shards
            assert sum(entry["triples"] for entry in stats) > 0
            assert all(entry["restarts"] == 0 for entry in stats)
            if shards > 1:  # shards=1 stays a single in-process graph
                pids = {entry["pid"] for entry in stats}
                assert len(pids) == shards and os.getpid() not in pids
        seconds[shards] = (inline_seconds, process_seconds)
        ratio = inline_seconds / process_seconds
        rows.append({
            "config": f"shards={shards}",
            "inline_s": round(inline_seconds, 2),
            "process_s": round(process_seconds, 2),
            "process_vs_inline": round(ratio, 2),
        })
        payload["workers"][str(shards)] = {
            "inline_seconds": inline_seconds,
            "process_seconds": process_seconds,
            "process_vs_inline": ratio,
        }
    speedup = seconds[4][0] / seconds[4][1]
    payload["speedup_4_shards"] = speedup
    print_table(
        f"Process shard workers: {PROCESS_TOTAL}-record mixed stream "
        f"({cores} core(s) available)", rows,
    )
    _record_artifact("process_backend", payload)

    if cores >= 4:
        assert speedup >= 2.5
    else:
        # no parallelism available: only guard that the RPC machinery's
        # overhead stays bounded, mirroring the mixed-batch threshold
        assert speedup > 0.4


# --------------------------------------------------------------------- #
# federated query latency (pytest-benchmark harness)
# --------------------------------------------------------------------- #


def test_bench_federated_query_latency(benchmark):
    """Warm scatter-gather latency of one dashboard query over 4 shards."""
    sharded = _build(shards=4)
    for district in DISTRICTS:
        sharded.ingest_batch(_district_poll(district, 0, 50))
    query_text = GLOBAL_QUERIES[0]
    sharded.query(query_text)  # warm plan + result caches

    benchmark.pedantic(lambda: sharded.query(query_text), rounds=5, iterations=20)
