"""E6 -- ontology library construction, reasoning and query latency (Fig. 1)."""

import pytest

from benchmarks.conftest import print_table
from repro.core.annotation import SemanticAnnotator
from repro.core.mediator import Mediator
from repro.ontologies import build_unified_ontology
from repro.semantics.reasoner import Reasoner
from repro.semantics.sparql.evaluator import query
from repro.streams.messages import ObservationRecord


def test_bench_build_library(benchmark):
    """Construction time of the full unified ontology."""
    library = benchmark(lambda: build_unified_ontology(materialize=False))
    assert library.statistics()["classes"] > 80


def test_bench_reasoner_materialisation(benchmark):
    """Forward-chaining closure over the unified ontology."""
    def run():
        library = build_unified_ontology(materialize=False)
        reasoner = Reasoner(library.graph)
        return reasoner.materialize(), library

    (trace, library) = benchmark.pedantic(run, rounds=3, iterations=1)
    assert trace.inferred > 300


def test_bench_query_latency(benchmark, ontology_library):
    """Latency of a typical DEWS query over ontology plus annotations."""
    graph = ontology_library.graph.copy()
    annotator = SemanticAnnotator(graph)
    mediator = Mediator()
    for index in range(300):
        outcome = mediator.mediate(ObservationRecord(
            source_id=f"Mangaung-mote-{index % 10}", source_kind="wsn_mote",
            property_name="Bodenfeuchte", value=5.0 + index % 30, unit="percent",
            timestamp=float(index * 3600), location=(-29.1, 26.2),
        ))
        annotator.annotate(outcome.observation)

    text = """
        SELECT ?obs ?v WHERE {
            ?obs ssn:observedProperty envo:SoilMoisture .
            ?obs ssn:hasResult ?r .
            ?r ssn:hasValue ?v .
            FILTER (?v < 12)
        }
    """
    result = benchmark(lambda: query(graph, text))
    assert len(result) > 0


def test_bench_ontology_statistics_table(benchmark, ontology_library):
    """The E6 table: size of the ontology library and reasoning closure."""
    library = benchmark.pedantic(lambda: build_unified_ontology(materialize=False), rounds=1, iterations=1)
    before = len(library.graph)
    trace = Reasoner(library.graph).materialize()
    stats = library.statistics()
    rows = [
        {"metric": "component ontologies", "value": stats["components"]},
        {"metric": "named classes", "value": stats["classes"]},
        {"metric": "properties", "value": stats["properties"]},
        {"metric": "individuals", "value": stats["individuals"]},
        {"metric": "asserted triples", "value": before},
        {"metric": "inferred triples", "value": trace.inferred},
        {"metric": "closure iterations", "value": trace.iterations},
    ]
    print_table("E6: unified ontology library", rows)
    assert stats["components"] == 7
    assert trace.inferred > 300
