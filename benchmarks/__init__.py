"""Benchmark harness regenerating every experiment in DESIGN.md (E1-E9)."""
