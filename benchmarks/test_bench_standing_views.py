"""Standing-view serving vs re-evaluating the dashboard suite per poll.

PR 4 gave the serving loop version-keyed result caches; PR 5 gave it
per-area partitions so one district's poll only invalidates one shard.
What is left is the cost of that invalidation itself: the dirty shard
re-evaluates every dashboard query from scratch on every poll, so
steady-state serving cost still grows with the shard.  A registered
standing view replaces that re-evaluation with an O(|delta|) fold of the
poll's triples into the materialized result, so per-poll serving cost
stays ~flat while the graph grows.

Benchmarks (each appends its rows to ``BENCH_standing_views.json``, the
summary artifact the CI bench-smoke job uploads via the ``BENCH_*.json``
glob):

* **Poll-cycle serving** — per-district polls with the 28-query dashboard
  suite served after each poll, views registered vs a re-evaluating
  twin.  At the final graph size the standing configuration must serve a
  poll's suite >= 5x faster, every answer staying bag-equal to the
  re-evaluating oracle throughout, and the per-poll serving time must be
  ~flat while the oracle's grows.  The observability counters prove the
  mechanism: the standing planner serves from ``view_hits`` (zero result
  misses once registered), and the views fold deltas without a single
  full refresh on the add-only stream.
* **Removal segment** — itemised removals after the cycle: views may fall
  back to a full re-materialization (counted) but must stay bag-equal.
* **Warm serve latency** — pytest-benchmark timing of one standing query.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from pathlib import Path
from typing import List

from benchmarks.conftest import print_table
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.ontologies.library import build_unified_ontology
from repro.ontologies.vocabulary import SSN
from repro.semantics.rdf.term import Literal
from repro.streams.messages import ObservationRecord

ARTIFACT = Path("BENCH_standing_views.json")

DISTRICTS = [f"district{index}" for index in range(8)]
PROPERTIES = [
    ("soil moisture", "percent", 20.0),
    ("rainfall", "mm", 3.0),
    ("air temperature", "degC", 18.0),
    ("relative humidity", "percent", 50.0),
]

ROUNDS = 10
RECORDS_PER_POLL = 60
TOTAL_RECORDS = ROUNDS * len(DISTRICTS) * RECORDS_PER_POLL  # 4_800

GLOBAL_QUERIES = [
    """SELECT ?obs ?v WHERE { ?obs rdf:type ssn:Observation .
        ?obs ssn:hasResult ?r . ?r ssn:hasValue ?v . FILTER (?v > 57) }""",
    """SELECT DISTINCT ?sensor WHERE { ?obs ssn:observedBy ?sensor .
        ?sensor rdf:type ssn:SensingDevice . }""",
    """SELECT ?obs ?t WHERE { ?obs ssn:observationResultTime ?t .
        ?obs rdf:type ssn:Observation . FILTER (?t > 1500000) }""",
    """SELECT ?r ?v WHERE { ?r rdf:type ssn:SensorOutput .
        ?r ssn:hasValue ?v . FILTER (?v > 57) }""",
    """SELECT ?obs ?m WHERE { ?obs africrid:alignmentMethod ?m .
        ?obs rdf:type ssn:Observation . FILTER (?m = "fuzzy") }""",
    """ASK WHERE { ?obs ssn:hasResult ?r . ?r ssn:hasValue ?v .
        FILTER (?v > 100) }""",
    """SELECT ?obs ?t WHERE { ?obs rdf:type ssn:Observation .
        ?obs ssn:observationResultTime ?t . FILTER (?t > 1600000) }""",
    # OPTIONAL panel: property is attached per observation
    """SELECT ?obs ?p WHERE { ?obs rdf:type ssn:Observation .
        OPTIONAL { ?obs ssn:observedProperty ?p } }""",
    """SELECT ?obs ?v WHERE { ?obs rdf:type ssn:Observation .
        ?obs ssn:hasResult ?r . ?r ssn:hasValue ?v . FILTER (?v > 56) }""",
    """SELECT ?r ?v WHERE { ?r rdf:type ssn:SensorOutput .
        ?r ssn:hasValue ?v . FILTER (?v > 58) }""",
    """SELECT DISTINCT ?platform WHERE { ?sensor ssn:onPlatform ?platform .
        ?sensor rdf:type ssn:SensingDevice . }""",
    """ASK WHERE { ?s rdf:type ssn:Observation }""",
]


def _area_query(district: str, threshold: int) -> str:
    feature = f"http://africrid.example.org/resource/feature/{district}"
    return (
        f"SELECT ?obs ?v WHERE {{ ?obs ssn:featureOfInterest <{feature}> . "
        f"?obs ssn:hasResult ?r . ?r ssn:hasValue ?v . FILTER (?v > {threshold}) }}"
    )


AREA_QUERIES = [
    _area_query(district, threshold)
    for district in DISTRICTS
    for threshold in (56, 57)
]
DASHBOARD_SUITE = GLOBAL_QUERIES + AREA_QUERIES  # 28 queries


def _record_artifact(section: str, payload) -> None:
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _district_poll(district: str, round_index: int, count: int) -> List[ObservationRecord]:
    records = []
    for index in range(count):
        name, unit, base = PROPERTIES[index % len(PROPERTIES)]
        sequence = round_index * count + index
        records.append(
            ObservationRecord(
                source_id=f"{district}-mote-{index % 5:02d}",
                source_kind="wsn_mote",
                property_name=name,
                value=base + (sequence % 9),
                unit=unit,
                timestamp=600.0 * sequence,
                location=(1.0, 2.0),
                metadata={"area": district},
            )
        )
    return records


def _build(shards: int) -> SemanticMiddleware:
    return SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(cep_per_record=False, shards=shards),
    )


def _solution_bag(result):
    if result.form == "ASK":
        return result.ask
    return Counter(
        frozenset((var.name, str(term)) for var, term in solution.items())
        for solution in result.solutions
    )


def _assert_bag_equivalent(standing: SemanticMiddleware, oracle: SemanticMiddleware):
    for query_text in DASHBOARD_SUITE:
        assert _solution_bag(standing.query(query_text)) == _solution_bag(
            oracle.query(query_text)
        ), query_text


def _serve_suite(middleware: SemanticMiddleware):
    """Serve the whole suite; returns (seconds, results)."""
    results = []
    start = time.perf_counter()
    for query_text in DASHBOARD_SUITE:
        results.append(middleware.query(query_text))
    return time.perf_counter() - start, results


# --------------------------------------------------------------------- #
# poll-cycle serving: standing views vs per-poll re-evaluation
# --------------------------------------------------------------------- #


def test_bench_standing_poll_cycle():
    """Registered views must serve the final-size suite >= 5x faster."""
    standing = _build(shards=4)
    oracle = _build(shards=4)
    views = []
    for query_text in DASHBOARD_SUITE:
        views.extend(standing.register_standing(query_text))

    standing_per_round: List[float] = []
    oracle_per_round: List[float] = []
    for round_index in range(ROUNDS):
        standing_seconds = 0.0
        oracle_seconds = 0.0
        for district in DISTRICTS:
            poll = _district_poll(district, round_index, RECORDS_PER_POLL)
            standing.ingest_batch(poll)
            oracle.ingest_batch(poll)
            seconds, served = _serve_suite(standing)
            standing_seconds += seconds
            seconds, expected = _serve_suite(oracle)
            oracle_seconds += seconds
            # every answer matches the re-evaluating oracle, every poll
            for query_text, got, want in zip(DASHBOARD_SUITE, served, expected):
                assert _solution_bag(got) == _solution_bag(want), query_text
        standing_per_round.append(standing_seconds)
        oracle_per_round.append(oracle_seconds)

    final_speedup = oracle_per_round[-1] / standing_per_round[-1]
    planner_stats = standing.ontology_layer.planner_statistics()
    view_stats = standing.ontology_layer.standing_view_statistics()
    oracle_stats = oracle.ontology_layer.planner_statistics()

    rows = [
        {"round": index + 1,
         "standing_ms": round(1000 * standing_per_round[index], 1),
         "reevaluate_ms": round(1000 * oracle_per_round[index], 1),
         "speedup": round(oracle_per_round[index] / standing_per_round[index], 1)}
        for index in range(ROUNDS)
    ]
    print_table(
        f"Per-round serving of the {len(DASHBOARD_SUITE)}-query suite "
        f"({len(DISTRICTS)} polls/round, {RECORDS_PER_POLL} records/poll)", rows,
    )
    _record_artifact("poll_cycle", {
        "records": TOTAL_RECORDS,
        "queries_per_poll": len(DASHBOARD_SUITE),
        "standing_seconds_per_round": standing_per_round,
        "reevaluate_seconds_per_round": oracle_per_round,
        "final_round_speedup": final_speedup,
        "view_hits": planner_stats.view_hits,
        "standing_result_misses": planner_stats.result_misses,
        "oracle_result_misses": oracle_stats.result_misses,
        "delta_updates": view_stats["delta_updates"],
        "full_refreshes": view_stats["full_refreshes"],
        "views": len(views),
    })

    # the mechanism, not just the outcome: registered queries are served
    # from the views (no planner re-evaluation), maintained purely by
    # delta folding on this add-only stream, while the oracle re-evaluates
    # its dirty shard every poll
    assert planner_stats.view_hits > 0
    assert planner_stats.result_misses == 0
    assert oracle_stats.result_misses > 0
    assert view_stats["delta_updates"] > 0
    assert view_stats["full_refreshes"] == 0
    # serving from the materialized views must be ~flat as the graph
    # grows: the last round may not cost more than 3x the first, while the
    # re-evaluating oracle visibly grows
    assert standing_per_round[-1] <= 3.0 * max(standing_per_round[0], 1e-4)
    assert final_speedup >= 5.0


# --------------------------------------------------------------------- #
# removal segment: itemised retractions stay correct
# --------------------------------------------------------------------- #


def test_bench_standing_removals_stay_correct():
    """Removals may force full refreshes (counted) but never wrong rows."""
    standing = _build(shards=4)
    oracle = _build(shards=4)
    for query_text in DASHBOARD_SUITE:
        standing.register_standing(query_text)
    for round_index in range(2):
        for district in DISTRICTS:
            poll = _district_poll(district, round_index, RECORDS_PER_POLL)
            standing.ingest_batch(poll)
            oracle.ingest_batch(poll)
    _assert_bag_equivalent(standing, oracle)

    # retract every value-58 reading from both deployments (the record
    # streams are identical, so the annotation triples are too)
    removed = 0
    for middleware in (standing, oracle):
        count = 0
        for shard_graph in middleware.ontology_layer.graphs:
            victims = list(shard_graph.triples((None, SSN.hasValue, Literal(58.0))))
            for triple in victims:
                shard_graph.remove(triple)
            count += len(victims)
        removed = count
    assert removed > 0

    start = time.perf_counter()
    _assert_bag_equivalent(standing, oracle)
    serve_seconds = time.perf_counter() - start
    view_stats = standing.ontology_layer.standing_view_statistics()
    print_table("Removal segment", [
        {"removed_triples": removed,
         "full_refreshes": view_stats["full_refreshes"],
         "delta_updates": view_stats["delta_updates"],
         "serve_ms": round(1000 * serve_seconds, 1)},
    ])
    _record_artifact("removals", {
        "removed_triples": removed,
        "full_refreshes": view_stats["full_refreshes"],
        "delta_updates": view_stats["delta_updates"],
        "serve_seconds": serve_seconds,
    })
    # the value-58 retraction is relevant to the exceedance views (they
    # must fall back) but irrelevant to e.g. the sensor-platform panels
    # (they must not)
    assert view_stats["full_refreshes"] > 0


# --------------------------------------------------------------------- #
# warm serve latency (pytest-benchmark harness)
# --------------------------------------------------------------------- #


def test_bench_standing_serve_latency(benchmark):
    """Warm latency of one standing dashboard query over 4 shards."""
    standing = _build(shards=4)
    standing.register_standing(GLOBAL_QUERIES[0])
    for district in DISTRICTS:
        standing.ingest_batch(_district_poll(district, 0, 50))
    standing.query(GLOBAL_QUERIES[0])  # fold the deltas in once

    benchmark.pedantic(lambda: standing.query(GLOBAL_QUERIES[0]), rounds=5, iterations=20)
