"""E9 -- ablation: what does the semantic mediation layer buy? (DESIGN.md §4)

Runs the same DEWS scenario with and without the unified-ontology mediation
(the "without" arm emulates a fixed-schema, standards-only pipeline: only
exact canonical spellings resolve and units are passed through unconverted)
and compares how much observation data survives to the forecasting layer and
what that does to forecast skill.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.dews.system import DewsConfig, DroughtEarlyWarningSystem
from repro.workloads import DroughtEpisode, build_free_state_scenario


def _run(use_semantic_mediation, seed=13):
    scenario = build_free_state_scenario(
        districts=["Mangaung"], motes_per_district=8, observers_per_district=10,
        stations_per_district=1,
        episodes=[DroughtEpisode(200.0, 310.0, 0.85)], seed=seed,
    )
    config = DewsConfig(
        days=365, forecast_every_days=15, forecast_start_day=60, seed=seed,
        use_semantic_mediation=use_semantic_mediation,
    )
    return DroughtEarlyWarningSystem(scenario, config).run()


@pytest.fixture(scope="module")
def ablation_runs():
    return {"with mediation": _run(True), "without mediation": _run(False)}


def test_bench_ablation_run(benchmark):
    """Wall-clock of the no-mediation arm (same pipeline, degraded input)."""
    benchmark.pedantic(lambda: _run(False), rounds=1, iterations=1)


def test_bench_ablation_table(benchmark, ablation_runs):
    """The E9 table: data survival and forecast skill with/without mediation."""
    rows = []
    benchmark(lambda: {label: r.skill_table() for label, r in ablation_runs.items()})
    for label, result in ablation_runs.items():
        mediation = result.middleware_statistics["mediation"]
        soil = result.daily_series["Mangaung"]["soil_moisture"]
        fusion = result.skills["fusion"]
        statistical = result.skills["statistical"]
        rows.append({
            "pipeline": label,
            "resolution_rate": round(mediation.resolution_rate, 3),
            "soil_series_coverage": round(float(np.isfinite(soil[60:360]).mean()), 3),
            "stat_CSI": round(statistical.csi, 3),
            "fusion_POD": round(fusion.pod, 3),
            "fusion_CSI": round(fusion.csi, 3),
        })
    print_table("E9: ablation of the semantic mediation layer", rows)

    with_mediation = ablation_runs["with mediation"]
    without = ablation_runs["without mediation"]
    res_with = with_mediation.middleware_statistics["mediation"].resolution_rate
    res_without = without.middleware_statistics["mediation"].resolution_rate
    # mediation recovers far more of the heterogeneous stream ...
    assert res_with > res_without + 0.3
    # ... which translates into more usable daily series for forecasting
    soil_with = with_mediation.daily_series["Mangaung"]["soil_moisture"]
    soil_without = without.daily_series["Mangaung"]["soil_moisture"]
    assert np.isfinite(soil_with[60:360]).mean() >= np.isfinite(soil_without[60:360]).mean()
    # and the integrated forecaster does not get worse when mediation is on
    assert with_mediation.skills["fusion"].csi >= without.skills["fusion"].csi - 0.05
