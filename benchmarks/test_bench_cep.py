"""E3 -- CEP engine throughput and drought-precursor detection (paper §4, §5)."""

import time

import pytest

import repro.cep.engine as cep_engine_module
from benchmarks.conftest import print_table
from repro.cep.engine import CepEngine
from repro.cep.event import Event
from repro.cep.patterns import ThresholdPattern
from repro.cep.rules import CepRule
from repro.ik.knowledge_base import IndigenousKnowledgeBase
from repro.ik.rules import derive_cep_rules, sensor_process_rules
from repro.streams.scheduler import DAY


def _engine():
    engine = CepEngine()
    engine.add_rules(sensor_process_rules())
    engine.add_rules(derive_cep_rules(IndigenousKnowledgeBase()))
    return engine


def _event_stream(days=120, per_day=12, drought_from=60):
    """A synthetic anomaly/sighting stream with a drought starting mid-way."""
    events = []
    for day in range(days):
        dry = day >= drought_from
        for index in range(per_day):
            timestamp = day * DAY + index * 3600.0
            events.append(Event("soil_moisture_anomaly", -1.8 if dry else 0.1,
                                timestamp, source_id="agg", area="Mangaung"))
            events.append(Event("rainfall_anomaly", -1.2 if dry else 0.2,
                                timestamp, source_id="agg", area="Mangaung"))
            events.append(Event("air_temperature_anomaly", 1.5 if dry else -0.1,
                                timestamp, source_id="agg", area="Mangaung"))
        if dry and day % 3 == 0:
            for observer in range(4):
                events.append(Event("sifennefene_worms", 0.8, day * DAY + observer,
                                    source_id=f"obs-{observer}", area="Mangaung"))
    return events


def test_bench_cep_routing_precomputed_fingerprints(monkeypatch):
    """Routing must reuse fingerprints precomputed at ``add_rule`` time.

    Two properties, one micro-benchmark each:

    * the pattern tree is never re-walked per ``process`` call —
      ``_pattern_event_types`` is instrumented and must not fire during
      event processing, and
    * per-event routing cost stays flat as the registered-rule population
      grows 10x, because the interest list per event type is a single
      cached dict probe.
    """
    engine = _engine()
    calls = {"count": 0}
    original = cep_engine_module._pattern_event_types

    def counting(pattern):
        calls["count"] += 1
        return original(pattern)

    monkeypatch.setattr(cep_engine_module, "_pattern_event_types", counting)
    events = _event_stream(days=30)
    engine.process_many(events)
    assert calls["count"] == 0, "pattern fingerprints recomputed during process()"

    def unmatched_routing_seconds(extra_rules: int) -> float:
        routed = CepEngine(feedback=False)
        for index in range(extra_rules):
            routed.add_rule(CepRule(
                name=f"filler-{index}",
                pattern=ThresholdPattern(f"filler_type_{index}", -1.0),
                window_seconds=DAY,
                derived_event_type=f"filler_derived_{index}",
            ))
        stream = [Event("unmatched_type", 0.0, float(i)) for i in range(20_000)]
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            routed.process_many(stream)
            best = min(best, time.perf_counter() - start)
        return best / len(stream)

    small = unmatched_routing_seconds(17)
    large = unmatched_routing_seconds(170)
    print_table("CEP routing cost per unmatched event", [
        {"rules": 17, "us_per_event": round(small * 1e6, 3)},
        {"rules": 170, "us_per_event": round(large * 1e6, 3)},
    ])
    # 10x the rules must not translate into anywhere near 10x the per-event
    # routing cost (generous slack for timer noise)
    assert large < small * 3


def test_bench_cep_throughput(benchmark):
    """Events/second through a fully loaded rule set (17 rules)."""
    events = _event_stream(days=60)

    def run():
        engine = _engine()
        engine.process_many(events)
        return engine

    engine = benchmark.pedantic(run, rounds=3, iterations=1)
    assert engine.statistics.events_processed == len(events)


def test_bench_cep_detection_table(benchmark):
    """The E3 table: per-rule firings and detection latency after onset."""
    engine = _engine()
    events = _event_stream()
    derived = benchmark.pedantic(lambda: engine.process_many(events), rounds=1, iterations=1)

    first_fire = {}
    for event in derived:
        first_fire.setdefault(event.event_type, event.timestamp / DAY)
    rows = []
    for rule_name, rule in sorted(engine.rules.items()):
        rows.append({
            "rule": rule_name,
            "source": rule.source,
            "evaluations": rule.statistics.evaluations,
            "fired": rule.statistics.fired,
            "first_fire_day": round(first_fire.get(rule.derived_event_type, float("nan")), 1),
        })
    rows = [row for row in rows if row["fired"] > 0 or row["source"] == "sensor"]
    print_table("E3: CEP rule firings (drought injected at day 60)", rows)

    detection_days = [
        first_fire[event_type]
        for event_type in ("soil_drying_process", "rainfall_deficit_process",
                           "heat_accumulation_process", "ik_dry_indication")
        if event_type in first_fire
    ]
    # precursor processes are detected within a month of the injected onset
    assert detection_days, "no drought precursor detected at all"
    assert min(detection_days) >= 60.0
    assert min(detection_days) <= 95.0
    # no sensor-side false positives before the onset
    early = [e for e in derived if e.timestamp / DAY < 60
             and not e.event_type.startswith("ik_")]
    assert not early
