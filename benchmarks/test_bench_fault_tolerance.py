"""Fault-tolerance cost: detection latency, restart time, degraded reads.

Supervision must be cheap when nothing fails and bounded when something
does.  Four measurements, each against the same 2-shard process-backend
middleware and record stream:

* **Hung-worker detection latency** — a worker armed to sleep far past
  the RPC deadline must be declared hung within ``shard_rpc_timeout``
  (not the sleep length), SIGKILLed and replaced.
* **Restart-to-serving time** — from a worker crash to the shard
  serving its replayed in-flight batch again (snapshot load + WAL tail
  replay + view re-registration + replay), reported as the delta over a
  clean batch.
* **Degraded-read overhead** — federated query latency with every
  shard healthy vs with one shard tripped under ``degraded_reads``
  (breaker checks + synthetic replies on the scatter path).
* **Quarantine throughput cost** — wall-clock tax on a whole ingest
  run when one poison batch burns its replay budget and is written to
  the dead-letter journal.

Each test appends its rows to ``BENCH_fault_tolerance.json``, the
summary artifact the CI bench-smoke job uploads via the
``BENCH_*.json`` glob.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import List, Optional

from benchmarks.conftest import print_table
from repro.core.faults import FaultPlan
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.ontologies.library import build_unified_ontology
from repro.streams.messages import ObservationRecord

ARTIFACT = Path("BENCH_fault_tolerance.json")

DISTRICTS = [f"district{index}" for index in range(8)]
PROPERTIES = [
    ("soil moisture", "percent", 20.0),
    ("rainfall", "mm", 3.0),
    ("air temperature", "degC", 18.0),
    ("relative humidity", "percent", 50.0),
]

SHARDS = 2
BATCHES = 6
RECORDS_PER_BATCH = 500
RPC_TIMEOUT = 0.5

QUERY = """SELECT ?obs ?v WHERE {
    ?obs rdf:type ssn:Observation .
    ?obs ssn:hasResult ?r .
    ?r ssn:hasValue ?v .
}"""


def _record_artifact(section: str, payload) -> None:
    data = {}
    if ARTIFACT.exists():
        try:
            data = json.loads(ARTIFACT.read_text())
        except (ValueError, OSError):
            data = {}
    data[section] = payload
    ARTIFACT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _batch(batch_index: int) -> List[ObservationRecord]:
    records = []
    for index in range(RECORDS_PER_BATCH):
        sequence = batch_index * RECORDS_PER_BATCH + index
        district = DISTRICTS[sequence % len(DISTRICTS)]
        name, unit, base = PROPERTIES[sequence % len(PROPERTIES)]
        records.append(
            ObservationRecord(
                source_id=f"{district}-mote-{sequence % 5:02d}",
                source_kind="wsn_mote",
                property_name=name,
                value=base + (sequence % 9),
                unit=unit,
                timestamp=600.0 * sequence,
                location=(1.0, 2.0),
                metadata={"area": district},
            )
        )
    return records


def _build(data_dir, plan: Optional[str] = None, **kwargs) -> SemanticMiddleware:
    config = dict(
        cep_per_record=False,
        annotate_observations=True,
        shards=SHARDS,
        shard_backend="process",
        data_dir=str(data_dir),
        shard_rpc_timeout=RPC_TIMEOUT,
        shard_restart_backoff=0.01,
        fault_plan=FaultPlan.parse(plan) if plan else None,
    )
    config.update(kwargs)
    return SemanticMiddleware(
        library=build_unified_ontology(materialize=True),
        config=MiddlewareConfig(**config),
    )


def _batch_seconds(middleware: SemanticMiddleware) -> List[float]:
    seconds = []
    for batch_index in range(BATCHES):
        records = _batch(batch_index)
        start = time.perf_counter()
        middleware.ingest_batch(records)
        seconds.append(time.perf_counter() - start)
    return seconds


def test_bench_detection_and_restart(tmp_path):
    """Hang detection bounded by the deadline; crash restart bounded too."""
    baseline = _build(tmp_path / "clean")
    clean_seconds = _batch_seconds(baseline)
    baseline.close()
    clean_batch = statistics.median(clean_seconds)

    # a worker that sleeps 60 s must be caught at the 0.5 s deadline
    hung = _build(tmp_path / "hang", "hang:op=ingest:shard=0:at=3:delay=60")
    hang_seconds = _batch_seconds(hung)
    assert hung.health()["healthy"]
    hung.close()
    hang_batch = max(hang_seconds)
    detection_latency = hang_batch - clean_batch
    assert detection_latency < 60.0, "detection must not wait out the hang"

    # a crash is detected by EOF (no deadline wait): the faulted batch
    # pays restart + WAL replay + in-flight replay only
    crashed = _build(tmp_path / "crash", "crash:op=ingest:shard=0:at=3")
    crash_seconds = _batch_seconds(crashed)
    assert crashed.health()["healthy"]
    crashed.close()
    restart_to_serving = max(crash_seconds) - clean_batch

    print_table(
        f"supervision: {RECORDS_PER_BATCH}-record batches, {SHARDS} shards, "
        f"deadline {RPC_TIMEOUT}s",
        [
            {"metric": "clean batch (median)", "seconds": round(clean_batch, 3)},
            {"metric": "hung-worker detection + recovery",
             "seconds": round(detection_latency, 3)},
            {"metric": "crash restart-to-serving",
             "seconds": round(restart_to_serving, 3)},
        ],
    )
    _record_artifact("detection_and_restart", {
        "records_per_batch": RECORDS_PER_BATCH,
        "shards": SHARDS,
        "rpc_timeout": RPC_TIMEOUT,
        "clean_batch_seconds": clean_batch,
        "hung_batch_seconds": hang_batch,
        "detection_latency_seconds": detection_latency,
        "restart_to_serving_seconds": restart_to_serving,
    })


def test_bench_degraded_read_overhead(tmp_path):
    """Query latency: all shards healthy vs one tripped under degraded reads."""
    def median_query_seconds(middleware, runs: int = 40) -> float:
        samples = []
        for run in range(runs):
            start = time.perf_counter()
            result = middleware.query(QUERY)
            samples.append(time.perf_counter() - start)
            assert result.rows
        return statistics.median(samples)

    healthy = _build(tmp_path / "healthy")
    for batch_index in range(2):
        healthy.ingest_batch(_batch(batch_index))
    healthy_seconds = median_query_seconds(healthy)
    healthy.close()

    # shard 0 dies on its third ingest and every restart fails: the
    # breaker trips and reads serve partial results with the marker
    degraded = _build(
        tmp_path / "degraded",
        "crash:op=ingest:shard=0:at=3:count=99,boot_crash:shard=0:at=2:count=99",
        degraded_reads=True,
        shard_restart_budget=1,
        replay_budget=1,
    )
    for batch_index in range(2):
        degraded.ingest_batch(_batch(batch_index))
    degraded.ingest_batch(_batch(2))  # trips shard 0
    assert not degraded.health()["healthy"]
    degraded_seconds = median_query_seconds(degraded)
    assert degraded.query(QUERY).degraded
    degraded.close()

    overhead = degraded_seconds / healthy_seconds - 1.0
    print_table(
        "degraded reads: federated query latency",
        [
            {"config": "all shards up", "ms": round(healthy_seconds * 1e3, 3)},
            {"config": "one shard tripped (degraded)",
             "ms": round(degraded_seconds * 1e3, 3)},
            {"config": "delta", "ms": f"{overhead:+.1%}"},
        ],
    )
    _record_artifact("degraded_read_overhead", {
        "healthy_query_seconds": healthy_seconds,
        "degraded_query_seconds": degraded_seconds,
        "overhead": overhead,
    })


def test_bench_quarantine_throughput_cost(tmp_path):
    """Whole-run wall-clock tax of quarantining one poison batch."""
    clean = _build(tmp_path / "clean")
    clean_total = sum(_batch_seconds(clean))
    clean.close()

    # the batch's original send plus both replays crash (count=3); the
    # next batch after quarantine must land cleanly
    poisoned = _build(
        tmp_path / "poisoned",
        "crash:op=ingest:shard=0:at=3:count=3",
        replay_budget=2,
    )
    poisoned_total = sum(_batch_seconds(poisoned))
    health = poisoned.health()
    assert health["quarantined_batches"] == 1
    assert health["healthy"]
    poisoned.close()

    total_records = BATCHES * RECORDS_PER_BATCH
    cost = poisoned_total - clean_total
    print_table(
        f"poison-batch quarantine: {total_records} records, one poisoned batch",
        [
            {"config": "clean run", "seconds": round(clean_total, 2),
             "records_per_s": int(total_records / clean_total)},
            {"config": "quarantine run", "seconds": round(poisoned_total, 2),
             "records_per_s": int(total_records / poisoned_total)},
            {"config": "quarantine cost", "seconds": round(cost, 2),
             "records_per_s": ""},
        ],
    )
    _record_artifact("quarantine_throughput_cost", {
        "records": total_records,
        "clean_seconds": clean_total,
        "poisoned_seconds": poisoned_total,
        "quarantine_cost_seconds": cost,
        "replay_budget": 2,
    })
