"""E4 -- forecast skill: statistical baseline vs IK-only vs semantic fusion.

This is the paper's headline claim ("integration ... will improve the
accuracy of predicting drought", §2/§3/§6): the integrated forecaster should
detect more of the embedded drought episodes, with a usable lead time, than
the sensors-only statistical baseline, and should be better calibrated than
indigenous knowledge alone.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.dews.system import DewsConfig, DroughtEarlyWarningSystem
from repro.workloads import DroughtEpisode, build_free_state_scenario

SEEDS = (3, 11)


def _run(seed):
    scenario = build_free_state_scenario(
        districts=["Mangaung"], motes_per_district=8, observers_per_district=10,
        stations_per_district=1,
        episodes=[DroughtEpisode(200.0, 310.0, 0.85)], seed=seed,
    )
    config = DewsConfig(days=365, forecast_every_days=10, forecast_start_day=60, seed=seed)
    return DroughtEarlyWarningSystem(scenario, config).run()


@pytest.fixture(scope="module")
def runs():
    return [_run(seed) for seed in SEEDS]


def test_bench_dews_run(benchmark):
    """Wall-clock of one full end-to-end DEWS year (setup + run)."""
    benchmark.pedantic(lambda: _run(seed=3), rounds=1, iterations=1)


def test_bench_forecast_skill_table(benchmark, runs):
    """The E4 table: mean skill per forecasting method across seeds."""
    methods = ("statistical", "indigenous", "fusion")
    benchmark(lambda: [r.skill_table() for r in runs])
    aggregated = {method: [] for method in methods}
    for result in runs:
        for method in methods:
            skill = result.skills[method]
            aggregated[method].append(skill)

    rows = []
    for method in methods:
        skills = aggregated[method]
        rows.append({
            "method": method,
            "POD": round(float(np.mean([s.pod for s in skills])), 3),
            "FAR": round(float(np.mean([s.far for s in skills])), 3),
            "CSI": round(float(np.mean([s.csi for s in skills])), 3),
            "accuracy": round(float(np.mean([s.accuracy for s in skills])), 3),
            "Brier": round(float(np.mean([s.brier_score for s in skills])), 3),
            "lead_days": round(float(np.mean([s.mean_lead_time_days for s in skills])), 1),
        })
    print_table("E4: forecast skill by method (mean over seeds)", rows)

    by_method = {row["method"]: row for row in rows}
    # Shape checks (see EXPERIMENTS.md E4 for the full discussion): the
    # integrated forecaster is substantially more accurate and better
    # calibrated than indigenous knowledge alone, and the IK arm is what
    # provides the long warning lead the statistical baseline lacks.
    assert by_method["fusion"]["CSI"] >= by_method["indigenous"]["CSI"]
    assert by_method["fusion"]["accuracy"] >= by_method["indigenous"]["accuracy"]
    assert by_method["fusion"]["Brier"] <= by_method["indigenous"]["Brier"] + 0.02
    assert by_method["fusion"]["FAR"] <= by_method["indigenous"]["FAR"]
    assert by_method["indigenous"]["lead_days"] >= by_method["statistical"]["lead_days"]
    # every method actually produced forecasts over the whole horizon
    for result in runs:
        for method in methods:
            assert result.skills[method].forecasts_evaluated >= 20
