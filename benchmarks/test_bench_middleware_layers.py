"""E2 -- three-tier middleware path (paper Fig. 3 / §4.2).

Measures the per-observation cost of each middleware stage (mediation only,
mediation + annotation, full ingest with CEP and broker publication) and the
end-to-end path from cloud upload to application delivery.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core.mediator import Mediator
from repro.core.middleware import MiddlewareConfig, SemanticMiddleware
from repro.dews.cloud import CloudStore
from repro.streams.messages import ObservationRecord, SenMLCodec
from repro.streams.scheduler import SimulationScheduler


def _records(count=500):
    spellings = [("Bodenfeuchte", "percent"), ("Hoehe", "cm"), ("Dry Bulb Temperature", "degF"),
                 ("PLUVIO", "mm"), ("Stav", "m"), ("NDVI", "index")]
    return [
        ObservationRecord(
            source_id=f"Mangaung-mote-{index % 10:02d}", source_kind="wsn_mote",
            property_name=spellings[index % len(spellings)][0],
            value=10.0 + (index % 20), unit=spellings[index % len(spellings)][1],
            timestamp=float(index * 60), location=(-29.1, 26.2),
        )
        for index in range(count)
    ]


def test_bench_mediation_only(benchmark):
    records = _records()
    mediator = Mediator()
    benchmark(lambda: mediator.mediate_many(records))


def test_bench_ingest_without_annotation(benchmark, ontology_library):
    records = _records()
    middleware = SemanticMiddleware(
        library=ontology_library,
        config=MiddlewareConfig(annotate_observations=False, broker_latency=0.0),
    )
    benchmark(lambda: middleware.ingest_records(records))


def test_bench_ingest_with_annotation(benchmark, ontology_library):
    records = _records(200)
    middleware = SemanticMiddleware(
        library=ontology_library,
        config=MiddlewareConfig(annotate_observations=True, broker_latency=0.0),
    )
    benchmark.pedantic(lambda: middleware.ingest_records(records), rounds=3, iterations=1)


def test_bench_end_to_end_layer_table(benchmark, ontology_library):
    """The E2 table: message counts and latency through the three layers."""
    scheduler = SimulationScheduler()
    middleware = SemanticMiddleware(
        scheduler=scheduler, library=ontology_library,
        config=MiddlewareConfig(annotate_observations=False, broker_latency=0.05,
                                cloud_poll_interval=300.0),
    )
    cloud = CloudStore()
    middleware.attach_cloud_store(cloud)
    delivered = []
    middleware.subscribe_property("+", lambda event: delivered.append(event))

    records = _records(300)
    for start in range(0, len(records), 50):
        batch = records[start:start + 50]
        cloud.ingest(SenMLCodec.encode(batch), timestamp=float(start))
    scheduler.run_until(3600.0)

    stats = benchmark(middleware.statistics)
    rows = [
        {"layer": "interface protocol", "metric": "documents downloaded",
         "value": stats["interface_layer"].documents_downloaded},
        {"layer": "interface protocol", "metric": "records decoded",
         "value": stats["interface_layer"].records_decoded},
        {"layer": "ontology segment", "metric": "records mediated",
         "value": stats["mediation"].records_seen},
        {"layer": "ontology segment", "metric": "resolution rate",
         "value": round(stats["mediation"].resolution_rate, 3)},
        {"layer": "application abstraction", "metric": "canonical events published",
         "value": stats["application_layer"].events_published},
        {"layer": "application abstraction", "metric": "events delivered to app",
         "value": len(delivered)},
        {"layer": "broker", "metric": "mean fanout",
         "value": round(stats["broker"].fanout, 2)},
    ]
    print_table("E2: three-tier middleware path", rows)

    assert stats["interface_layer"].records_decoded == 300
    assert stats["application_layer"].events_published >= 290
    assert len(delivered) >= 290
